"""Multi-tenant hot-swap serving: the fleet control plane over the shards.

:class:`FleetServer` turns the sharded worker pool of
:class:`repro.serve.LocalizationServer` into a campus-scale router:

* **Multi-tenant** — every deployed model (one per building, device
  group, or precision) lives under a route key ``model_id@vN``; each
  worker process holds all deployed sessions, requests carry a
  ``model_id`` and the dispatcher coalesces per route.  All routes share
  the pool's shared-memory ring segments (:mod:`repro.serve.shm`): a
  batch for any tenant leases ring space on its target shard, and the
  per-route ``transport`` stats split each model's payload bytes by how
  they crossed the worker boundary.
* **Hot swap** — :meth:`swap` loads the new version on every worker,
  atomically flips the routing table (queued requests follow instantly —
  routes resolve at dispatch time), drains the outgoing version's
  in-flight batches, then unloads it.  Zero requests are lost: the old
  version keeps serving until its last batch returns, and crash
  re-dispatch covers both versions throughout.
* **Canary rollout** — :meth:`start_canary` routes a configurable
  fraction of a model's traffic to a candidate version and compares its
  error rate and p95 latency against the incumbent
  (:class:`CanaryPolicy`).  A failing canary is auto-rolled-back, a
  healthy one auto-promoted (same drain-then-unload dance as a swap).
  A batch that errors on a *non-primary* route is retried on the
  incumbent, so a broken canary version never fails a request at the
  client API — the failure is evidence against the canary, not against
  the client.

Zero-lost guarantees survive the shared-memory transport: a worker that
dies while holding ring leases for swap-drain or canary batches is
restarted by the base server, which keeps the parent-owned ring segment
alive, reclaims nothing early, and re-dispatches every leased batch
under the replacement worker's generation — so a drain always completes
and a canary retry never observes a torn payload.
"""

from __future__ import annotations

import threading
import time

from repro.fleet.registry import ModelRegistry, RegistryError
from repro.serve.admission import QosPolicy, load_qos_file, save_qos_file
from repro.serve.server import DEFAULT_MODEL, LocalizationServer, _Batch
from repro.serve.stats import RouteStats


class CanaryPolicy:
    """Promotion/rollback rules for a canary rollout.

    Parameters
    ----------
    fraction:
        Share of the model's traffic routed to the candidate (0, 1).
    min_requests:
        Canary requests that must finish before a promote decision.
    max_failures:
        Hard trip wire — this many failed canary batches roll back
        immediately, before ``min_requests`` accumulate.
    error_tolerance:
        Allowed canary error-rate excess over the incumbent's.
    p95_tolerance:
        Promote only if canary p95 latency ≤ incumbent p95 × this factor
        (skipped when either side has no latency sample yet).
    """

    def __init__(
        self,
        fraction: float = 0.25,
        min_requests: int = 40,
        max_failures: int = 3,
        error_tolerance: float = 0.02,
        p95_tolerance: float = 3.0,
    ):
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        if min_requests < 1:
            raise ValueError(f"min_requests must be >= 1, got {min_requests}")
        if max_failures < 1:
            raise ValueError(f"max_failures must be >= 1, got {max_failures}")
        self.fraction = float(fraction)
        self.min_requests = int(min_requests)
        self.max_failures = int(max_failures)
        self.error_tolerance = float(error_tolerance)
        self.p95_tolerance = float(p95_tolerance)

    def summary(self) -> dict:
        return {
            "fraction": self.fraction,
            "min_requests": self.min_requests,
            "max_failures": self.max_failures,
            "error_tolerance": self.error_tolerance,
            "p95_tolerance": self.p95_tolerance,
        }


class _Canary:
    """Book-keeping of one in-progress rollout."""

    def __init__(self, model: str, key: str, version: int | None,
                 policy: CanaryPolicy):
        self.model = model
        self.key = key
        self.version = version
        self.policy = policy
        self.acc = 0.0  # deterministic fraction accumulator (dispatcher only)
        self.active = True
        self.decision: str | None = None
        self.reason: str | None = None
        self.batch_errors = 0
        self.started = time.perf_counter()
        self.done = threading.Event()

    def status(self) -> dict:
        return {
            "model": self.model,
            "key": self.key,
            "version": self.version,
            "active": self.active,
            "decision": self.decision,
            "reason": self.reason,
            "batch_errors": self.batch_errors,
            "policy": self.policy.summary(),
        }


class FleetServer(LocalizationServer):
    """Serve many registry models from one shard pool, with hot swaps.

    Parameters
    ----------
    registry:
        A :class:`repro.fleet.ModelRegistry` (or a path to one) that
        ``deploy``/``swap``/``start_canary`` resolve versions from; omit
        it to deploy explicit snapshots only.
    qos_path:
        Optional JSON file of persisted per-model
        :class:`~repro.serve.admission.QosPolicy` entries (the ``fleet
        qos`` CLI surface); loaded at construction, written back by
        :meth:`set_qos_policy`.  Policies are keyed by model id, so they
        survive every swap and canary (route keys change, model ids
        don't).
    workers / max_batch / ...:
        Exactly :class:`repro.serve.LocalizationServer` (the pool is
        shared by every deployed model).
    """

    def __init__(self, registry: ModelRegistry | str | None = None,
                 workers: int = 2, max_batch: int = 32,
                 qos_path: str | None = None, **kwargs):
        super().__init__(None, workers=workers, max_batch=max_batch, **kwargs)
        if isinstance(registry, str):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.qos_path = qos_path
        if qos_path:
            for model_id, policy in load_qos_file(qos_path).items():
                self.qos.set_policy(model_id, policy)
        self._deployed: dict[str, dict] = {}  # model id → {key, version}
        self._canaries: dict[str, _Canary] = {}
        self._swap_log: list[dict] = []
        self._canary_log: list[dict] = []
        # Collector (not direct series): canary RouteStats objects are
        # replaced per rollout for a fresh comparison window, so the
        # registry must read through to the live objects at scrape time.
        self.metrics.add_collector(self._collect_fleet_metrics)

    # -- deployment ----------------------------------------------------
    @staticmethod
    def _route_key(model_id: str, version: int | None) -> str:
        return f"{model_id}@v{version}" if version is not None else model_id

    def _resolve_snapshot(self, model_id: str, version: int | None,
                          snapshot: dict | None) -> tuple[dict, int | None]:
        if snapshot is not None:
            return snapshot, version
        if self.registry is None:
            raise RegistryError(
                "no registry attached: pass snapshot= explicitly or build "
                "FleetServer(registry=...)"
            )
        entry = self.registry.get(model_id, version)
        return entry.load_snapshot(), entry.version

    def deploy(self, model_id: str, version: int | None = None,
               snapshot: dict | None = None, timeout: float = 60.0) -> dict:
        """Load ``model_id`` (at ``version``, default pinned/latest) onto
        every worker and start routing its traffic; returns metadata."""
        snapshot, version = self._resolve_snapshot(model_id, version, snapshot)
        key = self._route_key(model_id, version)
        info = self.load_model(key, snapshot, model=model_id, version=version,
                               timeout=timeout)
        with self._lock:
            self.set_route(model_id, key)
            self._deployed[model_id] = {"key": key, "version": version}
        self._journal_event("deploy", model=model_id, version=version,
                            key=key)
        return info

    def deployments(self) -> dict:
        """Currently routed versions: model id → {key, version}."""
        with self._lock:
            return {model: dict(entry) for model, entry in self._deployed.items()}

    # -- QoS policies (admission control) -------------------------------
    def set_qos_policy(self, model_id: str, policy,
                       persist: bool = True) -> QosPolicy:
        """Install ``policy`` (a :class:`QosPolicy` or its dict/shorthand
        form) for ``model_id``'s traffic, persist it to ``qos_path`` when
        configured, and journal the change.  Takes effect on the next
        submit — no restart, and (being model-keyed) no interaction with
        swaps or canaries."""
        if isinstance(policy, str):
            policy = QosPolicy.parse(policy)
        elif not isinstance(policy, QosPolicy):
            policy = QosPolicy.from_dict(policy)
        self.qos.set_policy(model_id, policy)
        if persist and self.qos_path:
            save_qos_file(self.qos_path, self.qos.policies())
        self._journal_event("qos_policy", model=model_id, **policy.to_dict())
        return policy

    def qos_policies(self) -> dict[str, dict]:
        """Installed per-model policies (model id → policy dict)."""
        return {model: policy.to_dict()
                for model, policy in self.qos.policies().items()}

    def _require_deployment(self, model_id: str) -> dict:
        entry = self._deployed.get(model_id)
        if entry is None:
            raise ValueError(
                f"model {model_id!r} is not deployed "
                f"(deployed: {sorted(self._deployed)})"
            )
        return entry

    def _check_compatible(self, model_id: str, incumbent_key: str,
                          candidate_info: dict) -> None:
        """Swap/canary targets must keep the incumbent's geometry — a
        client mid-stream must never see logits change shape."""
        incumbent = self._model_info[incumbent_key]
        for field in ("image_size", "channels", "num_classes"):
            if candidate_info[field] != incumbent[field]:
                raise ValueError(
                    f"cannot roll {model_id!r} to an incompatible geometry: "
                    f"{field} {incumbent[field]} → {candidate_info[field]}"
                )

    # -- hot swap ------------------------------------------------------
    def swap(self, model_id: str, version: int | None = None,
             snapshot: dict | None = None, timeout: float = 60.0) -> dict:
        """Replace ``model_id``'s serving version with zero lost requests.

        Ships the new snapshot to every worker, flips routing atomically
        (in-flight and queued requests on the old version still complete),
        drains the outgoing version and unloads it.  Returns a swap
        report (latency, traffic in flight at the flip)."""
        entry = self._require_deployment(model_id)
        if model_id in self._canaries:
            raise RuntimeError(
                f"model {model_id!r} has an active canary; promote or roll "
                "it back before swapping"
            )
        old_key, old_version = entry["key"], entry["version"]
        snapshot, version = self._resolve_snapshot(model_id, version, snapshot)
        new_key = self._route_key(model_id, version)
        if new_key == old_key:
            raise ValueError(
                f"model {model_id!r} is already serving version {version}"
            )

        start = time.perf_counter()
        from repro.infer.session import snapshot_info

        self._check_compatible(model_id, old_key, snapshot_info(snapshot))
        self.load_model(new_key, snapshot, model=model_id, version=version,
                        timeout=timeout)
        with self._lock:
            in_flight = sum(
                batch.n for batch in self._in_flight.values()
                if batch.key == old_key
            )
            with self._cond:
                queued = sum(r.n for r in self._pending if r.model == model_id)
            self.set_route(model_id, new_key)
            self._deployed[model_id] = {"key": new_key, "version": version}
            swap_latency_s = time.perf_counter() - start
        drained_s = self._drain_key(old_key, timeout=timeout)
        self.unload_model(old_key)
        report = {
            "model": model_id,
            "from_version": old_version,
            "to_version": version,
            "swap_latency_ms": swap_latency_s * 1e3,
            "in_flight_samples_at_flip": in_flight,
            "queued_samples_at_flip": queued,
            "drain_ms": drained_s * 1e3,
        }
        with self._lock:
            self._swap_log.append(report)
        self._journal_event("swap", **report)
        return report

    def _drain_key(self, key: str, timeout: float = 60.0) -> float:
        """Block until no in-flight batch or queued request targets
        ``key``; returns the elapsed drain time."""
        start = time.perf_counter()
        deadline = start + timeout
        while True:
            with self._lock:
                # _staged covers the hand-off window between the dispatcher
                # popping requests (under _cond) and the batch landing in
                # _in_flight (under _lock) — holding both locks here means
                # every live request is visible in exactly one of the three.
                busy = any(b.key == key for b in self._in_flight.values())
                if not busy:
                    with self._cond:
                        busy = any(
                            key in (r.routed_key, r.forced_key)
                            for r in list(self._pending) + self._staged
                        )
            if not busy:
                return time.perf_counter() - start
            if time.perf_counter() > deadline:
                raise RuntimeError(
                    f"route {key!r} did not drain within {timeout}s"
                )
            time.sleep(0.002)

    # -- canary rollout ------------------------------------------------
    def start_canary(self, model_id: str, version: int | None = None,
                     snapshot: dict | None = None,
                     policy: CanaryPolicy | None = None,
                     timeout: float = 60.0, **policy_overrides) -> dict:
        """Route a fraction of ``model_id`` traffic to a candidate version.

        The candidate is compared against the incumbent on error rate and
        p95 latency; it is auto-promoted or auto-rolled-back per
        ``policy`` (keyword overrides build one: ``fraction=0.5`` etc.).
        Requests that fail on the candidate are retried on the incumbent
        — no client-visible failures.  Returns the canary status."""
        entry = self._require_deployment(model_id)
        if model_id in self._canaries:
            raise RuntimeError(f"model {model_id!r} already has a canary")
        if policy is None:
            policy = CanaryPolicy(**policy_overrides)
        elif policy_overrides:
            raise ValueError("pass either policy= or keyword overrides, not both")
        snapshot, version = self._resolve_snapshot(model_id, version, snapshot)
        new_key = self._route_key(model_id, version)
        if new_key == entry["key"]:
            raise ValueError(
                f"model {model_id!r} is already serving version {version}"
            )
        from repro.infer.session import snapshot_info

        self._check_compatible(model_id, entry["key"], snapshot_info(snapshot))
        self.load_model(new_key, snapshot, model=model_id, version=version,
                        timeout=timeout)
        canary = _Canary(model_id, new_key, version, policy)
        with self._lock:
            self._route_stats[new_key] = RouteStats()  # fresh comparison window
            self._canaries[model_id] = canary
        self._journal_event("canary_start", model=model_id, version=version,
                            key=new_key, fraction=policy.fraction)
        return canary.status()

    def canary_status(self, model_id: str) -> dict | None:
        """Live status of the model's canary, or None."""
        with self._lock:
            canary = self._canaries.get(model_id)
            return canary.status() if canary else None

    def wait_canary(self, model_id: str, timeout: float = 120.0) -> dict:
        """Block until the model's canary is decided and finalized;
        returns the logged outcome."""
        with self._lock:
            canary = self._canaries.get(model_id)
        if canary is None:
            for event in reversed(self._canary_log):
                if event["model"] == model_id:
                    return event
            raise ValueError(f"model {model_id!r} has no canary")
        if not canary.done.wait(timeout):
            raise TimeoutError(
                f"canary for {model_id!r} undecided after {timeout}s"
            )
        with self._lock:
            for event in reversed(self._canary_log):
                if event["model"] == model_id:
                    return event
        raise RuntimeError(f"canary for {model_id!r} finalized without a log")

    def decide_canary(self, model_id: str, decision: str,
                      reason: str = "manual") -> dict:
        """Force an immediate ``"promote"`` or ``"rollback"``."""
        if decision not in ("promote", "rollback"):
            raise ValueError(f"decision must be promote|rollback, got {decision!r}")
        with self._lock:
            canary = self._canaries.get(model_id)
            if canary is None or not canary.active:
                raise ValueError(f"model {model_id!r} has no active canary")
            self._settle_canary(canary, decision, reason)
        return self.wait_canary(model_id)

    # -- routing / decision hooks (called by the base server) ----------
    def cache_route(self, model: str | None = None) -> str | None:
        """Route key a result cache may file ``model``'s answers under —
        ``None`` while the model has an active canary.  During a rollout a
        fraction of traffic must actually reach the candidate to gather
        promotion evidence; a result cache replaying incumbent answers
        would starve it, so the gateway skips caching until the canary
        settles (the journal's ``canary`` event then invalidates)."""
        model = model if model is not None else DEFAULT_MODEL
        with self._lock:
            canary = self._canaries.get(model)
            if canary is not None and canary.active:
                return None
            return self._routes.get(model)

    def _resolve_route(self, model: str) -> str:
        # Dispatcher thread only: the fraction accumulator needs no lock.
        canary = self._canaries.get(model)
        if canary is not None and canary.active:
            canary.acc += canary.policy.fraction
            if canary.acc >= 1.0:
                canary.acc -= 1.0
                return canary.key
        return self._routes[model]

    def _on_batch_done(self, batch: _Batch) -> None:
        model = self._model_info.get(batch.key, {}).get("model")
        canary = self._canaries.get(model) if model else None
        if canary is not None and canary.active:
            self._maybe_decide(canary)

    def _on_batch_error(self, batch: _Batch, text: str) -> bool:
        """Retry any non-primary-route failure on the model's incumbent.

        Covers canary candidates and an outgoing swap version alike; a
        failure on the primary route itself still fails the requests
        (base behavior) — there is nowhere safer to retry."""
        info = self._model_info.get(batch.key)
        model = info.get("model") if info else None
        primary = self._routes.get(model) if model else None
        if primary is None or primary == batch.key:
            return False
        route = self._route_stats.setdefault(batch.key, RouteStats())
        for _request in batch.requests:
            route.record_retry()
        canary = self._canaries.get(model)
        if canary is not None and canary.key == batch.key:
            canary.batch_errors += 1
        self._requeue(batch.requests, forced_key=primary)
        if canary is not None and canary.active:
            self._maybe_decide(canary)
        return True

    def _maybe_decide(self, canary: _Canary) -> None:
        """Auto promote/rollback once the evidence clears the policy bar;
        called under the bookkeeping lock."""
        policy = canary.policy
        stats = self._route_stats.get(canary.key)
        if stats is None:
            return
        bad = stats.failed + stats.retried
        if canary.batch_errors >= policy.max_failures:
            self._settle_canary(
                canary, "rollback",
                f"{canary.batch_errors} failed canary batches "
                f"(max_failures={policy.max_failures})",
            )
            return
        finished = stats.completed + bad
        if finished < policy.min_requests:
            return
        incumbent = self._route_stats.get(self._routes[canary.model])
        incumbent_rate = incumbent.error_rate() if incumbent else 0.0
        if stats.error_rate() > incumbent_rate + policy.error_tolerance:
            self._settle_canary(
                canary, "rollback",
                f"error rate {stats.error_rate():.3f} > incumbent "
                f"{incumbent_rate:.3f} + {policy.error_tolerance}",
            )
            return
        canary_p95 = stats.latency_ms.summary()["p95_ms"]
        incumbent_p95 = incumbent.latency_ms.summary()["p95_ms"] if incumbent else None
        if (canary_p95 is not None and incumbent_p95 is not None
                and canary_p95 > incumbent_p95 * policy.p95_tolerance):
            self._settle_canary(
                canary, "rollback",
                f"p95 {canary_p95:.2f} ms > incumbent {incumbent_p95:.2f} ms "
                f"x {policy.p95_tolerance}",
            )
            return
        self._settle_canary(
            canary, "promote",
            f"{stats.completed} requests, error rate "
            f"{stats.error_rate():.3f} ≤ incumbent + tolerance",
        )

    def _settle_canary(self, canary: _Canary, decision: str, reason: str) -> None:
        """Mark the decision and finalize off-thread (drain/unload block);
        called under the bookkeeping lock."""
        canary.active = False
        canary.decision = decision
        canary.reason = reason
        threading.Thread(
            target=self._finalize_canary, args=(canary,),
            name=f"fleet-canary-{canary.model}", daemon=True,
        ).start()

    def _finalize_canary(self, canary: _Canary) -> None:
        model = canary.model
        outcome = {
            "model": model,
            "version": canary.version,
            "decision": canary.decision,
            "reason": canary.reason,
            "batch_errors": canary.batch_errors,
            "elapsed_ms": (time.perf_counter() - canary.started) * 1e3,
        }
        def capture_stats() -> None:
            # Must run before unload_model(canary.key) — unloading retires
            # the key's RouteStats.
            with self._lock:
                stats = self._route_stats.get(canary.key)
                outcome["canary_stats"] = stats.summary() if stats else None

        try:
            if canary.decision == "promote":
                with self._lock:
                    old_key = self._routes[model]
                    old_version = self._deployed[model]["version"]
                    self.set_route(model, canary.key)
                    self._deployed[model] = {
                        "key": canary.key, "version": canary.version,
                    }
                outcome["from_version"] = old_version
                self._drain_key(old_key)
                self.unload_model(old_key)
            else:
                self._drain_key(canary.key)
                capture_stats()
                self.unload_model(canary.key)
        except Exception as error:  # surface in the log, never hang waiters
            outcome["finalize_error"] = f"{type(error).__name__}: {error}"
        finally:
            if "canary_stats" not in outcome:
                capture_stats()
            with self._lock:
                self._canaries.pop(model, None)
                self._canary_log.append(outcome)
            self._journal_event("canary", **outcome)
            canary.done.set()

    # -- observability -------------------------------------------------
    def _collect_fleet_metrics(self) -> list[dict]:
        """Fleet control-plane series for the unified metrics registry."""
        series: list[dict] = []
        with self._lock:
            series.append({"name": "fleet_deployed_models", "labels": {},
                           "kind": "gauge", "value": len(self._deployed)})
            series.append({
                "name": "fleet_active_canaries", "labels": {},
                "kind": "gauge",
                "value": sum(1 for c in self._canaries.values() if c.active),
            })
            series.append({"name": "fleet_swaps_total", "labels": {},
                           "kind": "counter", "value": len(self._swap_log)})
            series.append({"name": "fleet_canaries_settled_total",
                           "labels": {}, "kind": "counter",
                           "value": len(self._canary_log)})
            for model, entry in self._deployed.items():
                if entry["version"] is not None:
                    series.append({
                        "name": "fleet_route_version",
                        "labels": {"model": model},
                        "kind": "gauge", "value": entry["version"],
                    })
        return series

    def stats(self) -> dict:
        """Base serving stats plus the fleet control-plane section:
        per-model routing counts (each with its transport byte split),
        swap reports, canary outcomes, and a fleet-wide transport rollup
        over the currently deployed routes."""
        base = super().stats()
        with self._lock:
            models = {}
            rollup = {"shm_batches": 0, "shm_bytes": 0,
                      "pickle_batches": 0, "pickle_bytes": 0, "spills": 0}
            for model, entry in self._deployed.items():
                route = self._route_stats.get(entry["key"])
                summary = route.summary() if route else {}
                for field, value in summary.get("transport", {}).items():
                    rollup[field] += value
                models[model] = {
                    "version": entry["version"],
                    "key": entry["key"],
                    "canary": (
                        self._canaries[model].status()
                        if model in self._canaries else None
                    ),
                    **summary,
                }
            base["fleet"] = {
                "models": models,
                "transport": rollup,
                "swaps": list(self._swap_log),
                "canaries": list(self._canary_log),
            }
        return base
