"""A compact neural-network library on top of :mod:`repro.tensor`.

Provides the layer zoo required by VITAL and the four baseline frameworks:
dense layers, 1-D convolutions (CNNLoc), multi-head self-attention (VITAL's
ViT encoder and ANVIL), layer/batch normalization, dropout, the usual
activations, cross-entropy / MSE losses, SGD/Adam/AdamW optimizers with LR
schedules, a mini-batch :class:`Trainer`, and ``.npz`` weight serialization.
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.layers import Dense, Dropout, Flatten, Identity
from repro.nn.activations import ReLU, GELU, Tanh, Sigmoid, Softmax, LeakyReLU
from repro.nn.norm import LayerNorm, BatchNorm1d
from repro.nn.attention import MultiHeadSelfAttention, record_attention, is_recording_attention
from repro.nn.conv import Conv1d, GlobalAveragePool1d, MaxPool1d
from repro.nn.losses import CrossEntropyLoss, MSELoss, BCELoss, accuracy
from repro.nn.optim import SGD, Adam, AdamW, StepLR, CosineAnnealingLR
from repro.nn.trainer import Trainer, TrainConfig, TrainingHistory
from repro.nn.serialization import save_state_dict, load_state_dict, load_arrays
from repro.nn.quantization import (
    quantize_tensor,
    dequantize_tensor,
    quantize_tensor_per_channel,
    dequantize_tensor_per_channel,
    quantize_state_dict,
    dequantize_state_dict,
    quantize_model,
    model_size_bytes,
    compression_report,
)
from repro.nn import init
from repro.nn.rng import seed_all, get_rng

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Dense",
    "Dropout",
    "Flatten",
    "Identity",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "LeakyReLU",
    "LayerNorm",
    "BatchNorm1d",
    "MultiHeadSelfAttention",
    "record_attention",
    "is_recording_attention",
    "Conv1d",
    "GlobalAveragePool1d",
    "MaxPool1d",
    "CrossEntropyLoss",
    "MSELoss",
    "BCELoss",
    "accuracy",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "CosineAnnealingLR",
    "Trainer",
    "TrainConfig",
    "TrainingHistory",
    "save_state_dict",
    "load_state_dict",
    "load_arrays",
    "quantize_tensor",
    "dequantize_tensor",
    "quantize_tensor_per_channel",
    "dequantize_tensor_per_channel",
    "quantize_state_dict",
    "dequantize_state_dict",
    "quantize_model",
    "model_size_bytes",
    "compression_report",
    "init",
    "seed_all",
    "get_rng",
]
