"""Loss functions and classification metrics."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class targets.

    Accepts raw logits shaped ``(batch, classes)`` and integer targets
    shaped ``(batch,)``.  Optional label smoothing redistributes
    ``smoothing`` probability mass uniformly over the non-target classes.
    """

    def __init__(self, smoothing: float = 0.0):
        super().__init__()
        if not 0.0 <= smoothing < 1.0:
            raise ValueError(f"label smoothing must be in [0, 1), got {smoothing}")
        self.smoothing = smoothing

    def forward(self, logits: Tensor, targets) -> Tensor:
        targets = np.asarray(targets)
        if logits.ndim != 2:
            raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ValueError(
                f"targets shape {targets.shape} incompatible with logits {logits.shape}"
            )
        if targets.min() < 0 or targets.max() >= logits.shape[1]:
            raise ValueError("target class index out of range")
        batch, classes = logits.shape
        log_probs = logits.log_softmax(axis=-1)
        picked = log_probs[np.arange(batch), targets]
        nll = -picked.mean()
        if self.smoothing == 0.0:
            return nll
        uniform = -log_probs.mean(axis=-1).mean()
        return nll * (1.0 - self.smoothing) + uniform * self.smoothing


class MSELoss(Module):
    """Mean squared error between predictions and targets."""

    def forward(self, predictions: Tensor, targets) -> Tensor:
        targets = targets if isinstance(targets, Tensor) else Tensor(np.asarray(targets))
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        diff = predictions - targets
        return (diff * diff).mean()


class BCELoss(Module):
    """Binary cross-entropy on probabilities in (0, 1), clipped for stability."""

    def __init__(self, eps: float = 1e-7):
        super().__init__()
        self.eps = eps

    def forward(self, probabilities: Tensor, targets) -> Tensor:
        targets = targets if isinstance(targets, Tensor) else Tensor(np.asarray(targets))
        p = probabilities.clip(self.eps, 1.0 - self.eps)
        return -(targets * p.log() + (1.0 - targets) * (1.0 - p).log()).mean()


def accuracy(logits: Tensor | np.ndarray, targets) -> float:
    """Fraction of rows whose argmax matches the integer target."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets = np.asarray(targets)
    return float((scores.argmax(axis=-1) == targets).mean())
