"""Core feed-forward layers: Dense, Dropout, Flatten, Identity."""

from __future__ import annotations

import numpy as np

from repro.nn import init as init_schemes
from repro.nn.module import Module, Parameter
from repro.nn.rng import get_rng
from repro.tensor import Tensor, is_grad_enabled


class Dense(Module):
    """Fully connected layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Include an additive bias term (default ``True``).
    init:
        Weight initializer name: ``"glorot_uniform"`` (default),
        ``"glorot_normal"``, ``"he_normal"``, ``"he_uniform"`` or
        ``"truncated_normal"``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        init: str = "glorot_uniform",
        rng=None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense features must be positive")
        initializer = getattr(init_schemes, init)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(initializer((in_features, out_features), rng=rng))
        self.bias = Parameter(np.zeros(out_features, dtype=self.weight.dtype)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Dense({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    During training each activation is zeroed with probability ``rate`` and
    the survivors are scaled by ``1/(1-rate)`` so the expected activation is
    unchanged — evaluation mode is then a no-op.
    """

    def __init__(self, rate: float, rng=None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        # True no-op on every inference path: eval mode, zero rate, or any
        # no_grad() region — no mask allocation, no extra Tensor nodes.
        if not self.training or self.rate == 0.0 or not is_grad_enabled():
            return x
        rng = get_rng(self._rng)
        keep = 1.0 - self.rate
        mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"


class Flatten(Module):
    """Collapse all but the leading (batch) dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Identity(Module):
    """Pass-through layer, useful as a configurable no-op."""

    def forward(self, x: Tensor) -> Tensor:
        return x
