"""Weight initialization schemes.

Glorot/Xavier for tanh/sigmoid/linear layers, He/Kaiming for ReLU-family
layers, plus truncated-normal used for ViT patch/position embeddings (the
scheme the original ViT paper uses).
"""

from __future__ import annotations

import numpy as np

from repro.nn.rng import get_rng
from repro.tensor.tensor import DEFAULT_DTYPE


def glorot_uniform(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    rng = get_rng(rng)
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(DEFAULT_DTYPE)


def glorot_normal(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """Xavier/Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    rng = get_rng(rng)
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(DEFAULT_DTYPE)


def he_normal(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """Kaiming normal: N(0, 2 / fan_in); preferred before ReLU."""
    rng = get_rng(rng)
    fan_in, _fan_out = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(DEFAULT_DTYPE)


def he_uniform(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """Kaiming uniform: U(-a, a) with a = sqrt(6 / fan_in)."""
    rng = get_rng(rng)
    fan_in, _fan_out = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(DEFAULT_DTYPE)


def truncated_normal(shape: tuple[int, ...], std: float = 0.02, rng=None) -> np.ndarray:
    """Normal draws re-sampled (by clipping) into ±2 std, as in ViT embeddings."""
    rng = get_rng(rng)
    draws = rng.standard_normal(shape) * std
    return np.clip(draws, -2.0 * std, 2.0 * std).astype(DEFAULT_DTYPE)


def zeros(shape: tuple[int, ...], rng=None) -> np.ndarray:
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def ones(shape: tuple[int, ...], rng=None) -> np.ndarray:
    return np.ones(shape, dtype=DEFAULT_DTYPE)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """fan_in/fan_out for dense (in, out) and conv (out, in, k) kernels."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolution kernel (out_channels, in_channels, *spatial).
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
