"""Weight serialization to ``.npz`` archives.

The on-disk format is a flat NumPy archive keyed by parameter path (for
example ``encoder.msa.query.weight``), matching :meth:`Module.state_dict`.
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_state_dict(model: Module, path: str) -> None:
    """Write all model parameters to ``path`` (``.npz`` appended if absent)."""
    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path if path.endswith(".npz") else path + ".npz", **state)


def load_arrays(path: str) -> dict[str, np.ndarray]:
    """Read a ``.npz`` weight archive into a flat ``name -> array`` dict.

    Useful when the arrays are consumed directly — e.g. compiled into a
    :class:`repro.infer.InferenceSession` — without instantiating a model.
    """
    resolved = path if path.endswith(".npz") else path + ".npz"
    with np.load(resolved) as archive:
        return {name: archive[name] for name in archive.files}


def load_state_dict(model: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_state_dict` into ``model``."""
    model.load_state_dict(load_arrays(path))
    return model
