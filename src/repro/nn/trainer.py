"""Mini-batch training loop with early stopping and history tracking.

The same :class:`Trainer` drives VITAL and every neural baseline, so all
frameworks in the comparison benchmarks receive identical treatment
(optimizer, batching, early stopping) — only architectures differ, as in
the paper's evaluation protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import accuracy
from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer
from repro.nn.rng import get_rng
from repro.tensor import Tensor, no_grad


@dataclass
class TrainConfig:
    """Hyperparameters of a training run."""

    epochs: int = 30
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 0.0
    shuffle: bool = True
    early_stop_patience: int | None = None
    min_delta: float = 1e-4
    verbose: bool = False
    seed: int | None = None


@dataclass
class TrainingHistory:
    """Per-epoch records from :meth:`Trainer.fit`."""

    loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False
    wall_time_s: float = 0.0


class Trainer:
    """Trains a model that maps a feature batch to logits.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` whose ``forward`` accepts a ``Tensor``
        batch.
    loss_fn:
        Callable ``(logits, targets) -> Tensor`` scalar loss.
    config:
        :class:`TrainConfig`; a default one is built when omitted.
    optimizer:
        Optional pre-built optimizer; default is Adam at ``config.lr``.
    augment_fn:
        Optional per-epoch batch transform ``(X, rng) -> X`` executed on raw
        NumPy features — this is where VITAL plugs in its DAM stochastic
        stages so fresh dropout/noise is drawn every epoch.
    """

    def __init__(
        self,
        model: Module,
        loss_fn,
        config: TrainConfig | None = None,
        optimizer: Optimizer | None = None,
        augment_fn=None,
    ):
        self.model = model
        self.loss_fn = loss_fn
        self.config = config or TrainConfig()
        self.optimizer = optimizer or Adam(
            model.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )
        self.augment_fn = augment_fn

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        val_features: np.ndarray | None = None,
        val_targets: np.ndarray | None = None,
    ) -> TrainingHistory:
        """Run the configured number of epochs; returns the history."""
        config = self.config
        rng = get_rng(config.seed)
        features = np.asarray(features)
        targets = np.asarray(targets)
        if len(features) != len(targets):
            raise ValueError("features and targets disagree on sample count")
        if len(features) == 0:
            raise ValueError("cannot train on an empty dataset")

        history = TrainingHistory()
        best_val = np.inf
        patience_left = config.early_stop_patience
        start = time.perf_counter()

        for epoch in range(config.epochs):
            self.model.train()
            order = rng.permutation(len(features)) if config.shuffle else np.arange(len(features))
            epoch_loss = 0.0
            epoch_correct = 0.0
            for begin in range(0, len(order), config.batch_size):
                batch_idx = order[begin : begin + config.batch_size]
                batch_x = features[batch_idx]
                batch_y = targets[batch_idx]
                if self.augment_fn is not None:
                    batch_x = self.augment_fn(batch_x, rng)
                logits = self.model(Tensor(batch_x))
                loss = self.loss_fn(logits, batch_y)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_loss += float(loss.data) * len(batch_idx)
                if logits.ndim == 2 and np.asarray(batch_y).ndim == 1:
                    epoch_correct += accuracy(logits, batch_y) * len(batch_idx)

            history.loss.append(epoch_loss / len(order))
            history.train_accuracy.append(epoch_correct / len(order))
            history.epochs_run = epoch + 1

            if val_features is not None and val_targets is not None:
                val_loss, val_acc = self.evaluate(val_features, val_targets)
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
                if config.early_stop_patience is not None:
                    if val_loss < best_val - config.min_delta:
                        best_val = val_loss
                        patience_left = config.early_stop_patience
                    else:
                        patience_left -= 1
                        if patience_left <= 0:
                            history.stopped_early = True
                            break

            if config.verbose:
                val_note = f" val_loss={history.val_loss[-1]:.4f}" if history.val_loss else ""
                print(f"epoch {epoch + 1}/{config.epochs} loss={history.loss[-1]:.4f}{val_note}")

        history.wall_time_s = time.perf_counter() - start
        self.model.eval()
        return history

    def evaluate(self, features: np.ndarray, targets: np.ndarray) -> tuple[float, float]:
        """Mean loss and accuracy on a held-out set (no augmentation)."""
        self.model.eval()
        total_loss = 0.0
        total_correct = 0.0
        count = len(features)
        with no_grad():
            for begin in range(0, count, self.config.batch_size):
                batch_x = features[begin : begin + self.config.batch_size]
                batch_y = targets[begin : begin + self.config.batch_size]
                logits = self.model(Tensor(np.asarray(batch_x)))
                loss = self.loss_fn(logits, batch_y)
                total_loss += float(loss.data) * len(batch_x)
                if logits.ndim == 2 and np.asarray(batch_y).ndim == 1:
                    total_correct += accuracy(logits, batch_y) * len(batch_x)
        return total_loss / count, total_correct / count

    def predict(self, features: np.ndarray, batch_size: int | None = None) -> np.ndarray:
        """Forward the model over ``features`` in eval mode; returns raw outputs."""
        self.model.eval()
        batch = batch_size or self.config.batch_size
        outputs = []
        with no_grad():
            for begin in range(0, len(features), batch):
                logits = self.model(Tensor(np.asarray(features[begin : begin + batch])))
                outputs.append(logits.data)
        return np.concatenate(outputs, axis=0)
