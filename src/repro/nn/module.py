"""Module/Parameter abstractions mirroring the familiar torch.nn design.

A :class:`Module` auto-registers :class:`Parameter` and sub-``Module``
attributes on assignment, which gives recursive ``parameters()`` traversal,
``train()``/``eval()`` mode switching (dropout and batch-norm depend on it)
and flat ``state_dict`` serialization for free.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from repro.tensor import Tensor, no_grad


class Parameter(Tensor):
    """A trainable tensor; always created with ``requires_grad=True``."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network components."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # -- registration ---------------------------------------------------
    def __setattr__(self, key, value):
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # -- traversal ------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        return [param for _name, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total count of trainable scalars (the paper reports 234,706)."""
        return sum(p.size for p in self.parameters())

    # -- mode / gradients -------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    @contextlib.contextmanager
    def frozen(self):
        """Inference region: eval mode + ``no_grad()``, restored on exit.

        ``with model.frozen(): logits = model(x)`` is the canonical way to
        run the tape-free module forward; training/eval flags of every
        submodule are put back exactly as they were.
        """
        modes = [(module, module.training) for module in self.modules()]
        self.eval()
        try:
            with no_grad():
                yield self
        finally:
            for module, mode in modes:
                object.__setattr__(module, "training", mode)

    # -- serialization ----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat ``name -> array`` mapping of all parameters (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.shape}, got {value.shape}"
                )
            param.data = value.astype(param.dtype).copy()

    # -- forward ----------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {child!r}" for name, child in self._modules.items()]
        body = "\n".join(child_lines)
        header = self.__class__.__name__
        return f"{header}(\n{body}\n)" if body else f"{header}()"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = ModuleList(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)


class ModuleList(Module):
    """Ordered container that registers each element as a child module."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
