"""Multi-head self-attention, the core of the ViT encoder (paper Eq. 1-4).

Attention(Q, K, V) = softmax(Q K^T / sqrt(d_k)) V with Q = X W_Q,
K = X W_K, V = X W_V; heads are computed in parallel, concatenated, and
mixed by an output projection W_O (Eq. 4).

Attention-weight retention is **opt-in**: serving a forward pass must not
silently pin an (B, h, N, N) array on every attention module.  Enable it
per-module with ``collect_attention=True`` or temporarily for any model
with the :func:`record_attention` context manager.
"""

from __future__ import annotations

import contextlib

from repro.nn.layers import Dense, Dropout
from repro.nn.module import Module
from repro.tensor import Tensor

_ATTENTION_RECORDING = 0


@contextlib.contextmanager
def record_attention():
    """Temporarily retain attention weights on every MSA forward pass.

    Usage::

        with record_attention():
            model(images)
        maps = model.attention_maps()
    """
    global _ATTENTION_RECORDING
    _ATTENTION_RECORDING += 1
    try:
        yield
    finally:
        _ATTENTION_RECORDING -= 1


def is_recording_attention() -> bool:
    """Whether a :func:`record_attention` region is currently active."""
    return _ATTENTION_RECORDING > 0


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention over sequences shaped (batch, seq, dim).

    Parameters
    ----------
    dim:
        Embedding width; must be divisible by ``heads``.
    heads:
        Number of attention heads ``h`` (the paper sweeps 1-8, picks 5 —
        note 5 requires ``dim % 5 == 0``, which the VITAL projection width
        satisfies by construction).
    dropout:
        Dropout applied to the attention weights during training.
    collect_attention:
        Retain the softmax weights of every forward pass on
        ``last_attention``.  Off by default: retention holds a
        (batch, heads, seq, seq) array alive per module, which inference
        workloads must not pay for.
    """

    def __init__(self, dim: int, heads: int, dropout: float = 0.0, rng=None,
                 collect_attention: bool = False):
        super().__init__()
        if dim % heads != 0:
            raise ValueError(f"embedding dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.scale = 1.0 / (self.head_dim**0.5)
        self.query = Dense(dim, dim, rng=rng)
        self.key = Dense(dim, dim, rng=rng)
        self.value = Dense(dim, dim, rng=rng)
        self.out = Dense(dim, dim, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)
        self.collect_attention = collect_attention
        self._last_attention = None

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, dim = x.shape
        if dim != self.dim:
            raise ValueError(f"expected trailing dim {self.dim}, got {dim}")

        def split_heads(t: Tensor) -> Tensor:
            # (B, N, D) -> (B, h, N, D/h)
            return t.reshape(batch, seq, self.heads, self.head_dim).transpose((0, 2, 1, 3))

        q = split_heads(self.query(x))
        k = split_heads(self.key(x))
        v = split_heads(self.value(x))

        scores = (q @ k.transpose((0, 1, 3, 2))) * self.scale  # (B, h, N, N)
        weights = scores.softmax(axis=-1)
        if self.collect_attention or _ATTENTION_RECORDING:
            self._last_attention = weights.data
        weights = self.attn_dropout(weights)

        context = weights @ v  # (B, h, N, D/h)
        merged = context.transpose((0, 2, 1, 3)).reshape(batch, seq, dim)
        return self.out(merged)

    @property
    def last_attention(self):
        """Attention weights from the most recent *recorded* forward pass.

        Shape (batch, heads, seq, seq); useful for visualizing which APs
        the model attends to.  ``None`` unless the pass ran with
        ``collect_attention=True`` or inside :func:`record_attention`.
        """
        return self._last_attention

    def __repr__(self) -> str:
        return f"MultiHeadSelfAttention(dim={self.dim}, heads={self.heads})"
