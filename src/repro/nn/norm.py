"""Normalization layers: LayerNorm (used throughout the ViT encoder) and
BatchNorm1d (used by some baseline architectures)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor.tensor import DEFAULT_DTYPE


class LayerNorm(Module):
    """Normalize over the trailing feature dimension.

    The paper applies layer normalization before each MSA and MLP sub-block
    of the transformer encoder ("pre-norm"), with learnable gain/shift.
    """

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(np.ones(features, dtype=DEFAULT_DTYPE))
        self.beta = Parameter(np.zeros(features, dtype=DEFAULT_DTYPE))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.features:
            raise ValueError(
                f"LayerNorm expected trailing dim {self.features}, got {x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"LayerNorm({self.features})"


class BatchNorm1d(Module):
    """Batch normalization for (batch, features) inputs.

    Keeps exponential moving averages of mean/variance for evaluation mode.
    """

    def __init__(self, features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.features = features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(features, dtype=DEFAULT_DTYPE))
        self.beta = Parameter(np.zeros(features, dtype=DEFAULT_DTYPE))
        self.running_mean = np.zeros(features, dtype=DEFAULT_DTYPE)
        self.running_var = np.ones(features, dtype=DEFAULT_DTYPE)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.features:
            raise ValueError(f"BatchNorm1d expected (batch, {self.features}), got {x.shape}")
        if self.training:
            batch_mean = x.data.mean(axis=0)
            batch_var = x.data.var(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * batch_var
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            variance = (centered * centered).mean(axis=0, keepdims=True)
            normalized = centered / (variance + self.eps).sqrt()
        else:
            normalized = (x - Tensor(self.running_mean)) / Tensor(
                np.sqrt(self.running_var + self.eps)
            )
        return normalized * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.features})"
