"""Centralized random-number management for reproducible experiments.

Every stochastic component in the library (weight init, dropout, data
augmentation, the radio simulator) draws from a ``numpy.random.Generator``.
Components accept an explicit generator; when none is given they fall back
to the module-level generator controlled by :func:`seed_all`, so a single
call pins the whole experiment.
"""

from __future__ import annotations

import numpy as np

_GLOBAL_RNG = np.random.default_rng(0)


def seed_all(seed: int) -> np.random.Generator:
    """Reset the library-wide generator; returns it for convenience."""
    global _GLOBAL_RNG
    _GLOBAL_RNG = np.random.default_rng(seed)
    return _GLOBAL_RNG


def get_rng(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Resolve an optional generator/seed argument to a ``Generator``.

    ``None`` returns the global generator, an ``int`` seeds a fresh one, and
    a ``Generator`` passes through unchanged.
    """
    if rng is None:
        return _GLOBAL_RNG
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    return rng
