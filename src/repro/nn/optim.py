"""Gradient-descent optimizers and learning-rate schedules."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, parameters: list[Parameter], lr: float):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = parameters
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected first/second moments.

    ``weight_decay`` here is the classic L2 penalty folded into the
    gradient; see :class:`AdamW` for decoupled decay.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[key] = m
            self._v[key] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        decay = self.weight_decay
        self.weight_decay = 0.0
        try:
            if decay:
                for param in self.parameters:
                    if param.grad is not None:
                        param.data -= self.lr * decay * param.data
            super().step()
        finally:
            self.weight_decay = decay


class StepLR:
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)
        return self.optimizer.lr


class CosineAnnealingLR:
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch = min(self.epoch + 1, self.total_epochs)
        progress = self.epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * progress)
        )
        return self.optimizer.lr
