"""1-D convolution and pooling layers (required by the CNNLoc baseline).

The convolution is implemented as an autograd primitive using
``sliding_window_view`` + ``einsum`` for the forward pass, with an explicit
scatter-based backward.  Inputs follow the channels-first convention
``(batch, channels, length)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init as init_schemes
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, is_grad_enabled
from repro.tensor.tensor import DEFAULT_DTYPE


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """Cross-correlation of ``x`` (B, C_in, L) with ``weight`` (C_out, C_in, K)."""
    if x.ndim != 3 or weight.ndim != 3:
        raise ValueError(f"conv1d expects 3-D input/weight, got {x.shape} and {weight.shape}")
    batch, c_in, length = x.shape
    c_out, c_in_w, kernel = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    if stride < 1:
        raise ValueError("stride must be >= 1")

    padded = np.pad(x.data, ((0, 0), (0, 0), (padding, padding))) if padding else x.data
    length_padded = length + 2 * padding
    if kernel > length_padded:
        raise ValueError(f"kernel {kernel} larger than padded length {length_padded}")
    length_out = (length_padded - kernel) // stride + 1

    windows = np.lib.stride_tricks.sliding_window_view(padded, kernel, axis=2)[:, :, ::stride]
    out_data = np.einsum("bclk,ock->bol", windows, weight.data, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]

    parents = tuple(t for t in (x, weight, bias) if t is not None and t.requires_grad)
    out = Tensor(out_data, requires_grad=is_grad_enabled() and bool(parents), _parents=parents)
    if out.requires_grad:

        def backward(grad):
            if weight.requires_grad:
                weight._accumulate(np.einsum("bclk,bol->ock", windows, grad, optimize=True))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2)))
            if x.requires_grad:
                grad_padded = np.zeros_like(padded)
                for k in range(kernel):
                    contribution = np.einsum(
                        "bol,oc->bcl", grad, weight.data[:, :, k], optimize=True
                    )
                    grad_padded[:, :, k : k + stride * length_out : stride] += contribution
                x._accumulate(
                    grad_padded[:, :, padding : padding + length] if padding else grad_padded
                )

        out._backward = backward
    return out


def max_pool1d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over the trailing axis of (B, C, L) input."""
    stride = stride or kernel
    batch, channels, length = x.shape
    if kernel > length:
        raise ValueError(f"pool kernel {kernel} larger than length {length}")
    windows = np.lib.stride_tricks.sliding_window_view(x.data, kernel, axis=2)[:, :, ::stride]
    out_data = windows.max(axis=-1)
    out = Tensor(out_data, requires_grad=is_grad_enabled() and x.requires_grad, _parents=(x,) if x.requires_grad else ())
    if out.requires_grad:
        length_out = out_data.shape[-1]
        argmax = windows.argmax(axis=-1)  # (B, C, L_out)
        positions = argmax + (np.arange(length_out) * stride)[None, None, :]
        batch_index, channel_index = np.ogrid[:batch, :channels]

        def backward(grad):
            full = np.zeros_like(x.data)
            np.add.at(full, (batch_index[..., None], channel_index[..., None], positions), grad)
            x._accumulate(full)

        out._backward = backward
    return out


class Conv1d(Module):
    """Trainable 1-D convolution layer (channels-first)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        init: str = "he_normal",
        rng=None,
    ):
        super().__init__()
        initializer = getattr(init_schemes, init)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(initializer((out_channels, in_channels, kernel_size), rng=rng))
        self.bias = Parameter(np.zeros(out_channels, dtype=DEFAULT_DTYPE)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv1d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class MaxPool1d(Module):
    """Max pooling layer over the trailing axis."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool1d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool1d(k={self.kernel_size}, s={self.stride})"


class GlobalAveragePool1d(Module):
    """Average over the trailing (length) axis: (B, C, L) -> (B, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=-1)
