"""Post-training weight quantization (the paper's deployment concern).

The paper stresses that localization models must fit "memory-constrained
and computationally limited embedded and IoT platforms" and cites model
compression (CHISEL [25]) as the standard remedy.  This module provides
symmetric per-tensor int8 post-training quantization of any
:class:`repro.nn.Module`:

* :func:`quantize_state_dict` — weights → (int8 tensors, scales),
* :func:`dequantize_state_dict` — back to float for inference,
* :func:`quantize_model` — in-place round-trip ("fake quantization"),
  measuring the accuracy a deployed int8 model would see,
* :func:`model_size_bytes` — footprint accounting.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


def quantize_tensor(values: np.ndarray, bits: int = 8) -> tuple[np.ndarray, float]:
    """Symmetric linear quantization of one tensor.

    Returns ``(codes, scale)`` with ``codes`` in ``[-2^{bits-1}+1,
    2^{bits-1}-1]`` and ``values ≈ codes * scale``.
    """
    if not 2 <= bits <= 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    limit = float(2 ** (bits - 1) - 1)
    peak = float(np.abs(values).max())
    scale = peak / limit if peak > 0 else 1.0
    codes = np.clip(np.round(values / scale), -limit, limit)
    dtype = np.int8 if bits <= 8 else np.int16
    return codes.astype(dtype), scale


def dequantize_tensor(codes: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_tensor` (lossy)."""
    return codes.astype(np.float32) * np.float32(scale)


def quantize_state_dict(
    model: Module, bits: int = 8
) -> dict[str, tuple[np.ndarray, float]]:
    """Quantize every parameter of ``model``; returns name → (codes, scale)."""
    return {
        name: quantize_tensor(values, bits=bits)
        for name, values in model.state_dict().items()
    }


def dequantize_state_dict(
    quantized: dict[str, tuple[np.ndarray, float]]
) -> dict[str, np.ndarray]:
    """Reconstruct a float state dict from quantized parameters."""
    return {name: dequantize_tensor(codes, scale) for name, (codes, scale) in quantized.items()}


def quantize_model(model: Module, bits: int = 8) -> Module:
    """Round-trip the model's weights through ``bits``-bit quantization.

    After this call the model computes with exactly the values an int8
    deployment would use, so its accuracy drop can be measured directly.
    """
    model.load_state_dict(dequantize_state_dict(quantize_state_dict(model, bits=bits)))
    return model


def model_size_bytes(model: Module, bits: int = 32) -> int:
    """Model parameter footprint at the given weight precision."""
    total = model.num_parameters()
    return int(np.ceil(total * bits / 8))


def compression_report(model: Module, bits: int = 8) -> str:
    """Human-readable footprint comparison used by the bench."""
    full = model_size_bytes(model, bits=32)
    small = model_size_bytes(model, bits=bits)
    return (
        f"{model.num_parameters():,} params: float32 {full / 1024:.0f} KiB "
        f"-> int{bits} {small / 1024:.0f} KiB ({full / small:.1f}x smaller)"
    )
