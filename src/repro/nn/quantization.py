"""Post-training weight quantization (the paper's deployment concern).

The paper stresses that localization models must fit "memory-constrained
and computationally limited embedded and IoT platforms" and cites model
compression (CHISEL [25]) as the standard remedy.  This module provides
symmetric int8 post-training quantization of any
:class:`repro.nn.Module`, in two granularities:

* **per-tensor** — one scale for the whole tensor
  (:func:`quantize_tensor`), the classic cheap scheme;
* **per-channel** — one scale per output channel of a 2-D weight
  (:func:`quantize_tensor_per_channel`), which keeps narrow channels from
  being crushed by one wide outlier channel and is what the
  :mod:`repro.quant` serving path uses by default.

Entry points:

* :func:`quantize_state_dict` — weights → (int8 tensors, scales),
* :func:`dequantize_state_dict` — back to float for inference,
* :func:`quantize_model` — in-place round-trip ("fake quantization"),
  measuring the accuracy a deployed int8 model would see,
* :func:`model_size_bytes` — footprint accounting.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

#: Granularities understood by the scheme-taking entry points.
SCHEMES = ("per_tensor", "per_channel")


def _check_bits(bits: int) -> float:
    if not 2 <= bits <= 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    return float(2 ** (bits - 1) - 1)


def _code_dtype(bits: int):
    return np.int8 if bits <= 8 else np.int16


def quantize_tensor(values: np.ndarray, bits: int = 8) -> tuple[np.ndarray, float]:
    """Symmetric per-tensor linear quantization.

    Returns ``(codes, scale)`` with ``codes`` in ``[-2^{bits-1}+1,
    2^{bits-1}-1]`` and ``values ≈ codes * scale``.  An identically-zero
    tensor gets ``scale = 0.0`` (all-zero codes decode exactly back to
    zero, keeping the contract); tensors containing NaN or infinity are
    refused with a :exc:`ValueError` — silently clipping them would ship
    corrupted weights.
    """
    limit = _check_bits(bits)
    values = np.asarray(values)
    peak = float(np.abs(values).max()) if values.size else 0.0
    if not np.isfinite(peak):
        raise ValueError(
            "cannot quantize a tensor containing NaN or infinite values "
            f"(peak magnitude {peak!r})"
        )
    dtype = _code_dtype(bits)
    if peak == 0.0:
        return np.zeros(values.shape, dtype=dtype), 0.0
    scale = peak / limit
    codes = np.clip(np.round(values / scale), -limit, limit)
    return codes.astype(dtype), scale


def quantize_tensor_per_channel(
    values: np.ndarray, axis: int = -1, bits: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-channel quantization along ``axis``.

    Each slice along ``axis`` (an output channel for ``(in, out)`` dense
    weights with ``axis=-1``) gets its own scale, so one wide channel
    cannot crush the resolution of the rest.  Returns ``(codes, scales)``
    with ``scales`` shaped like the length of ``axis``; all-zero channels
    get ``scale = 0.0`` and decode exactly to zero.  NaN/inf values are
    refused like :func:`quantize_tensor`.
    """
    limit = _check_bits(bits)
    values = np.asarray(values)
    if values.ndim < 1:
        raise ValueError("per-channel quantization needs at least one axis")
    axis = axis % values.ndim
    reduce_axes = tuple(i for i in range(values.ndim) if i != axis)
    peaks = np.abs(values).max(axis=reduce_axes) if reduce_axes else np.abs(values)
    if not np.isfinite(peaks).all():
        raise ValueError(
            "cannot quantize a tensor containing NaN or infinite values "
            f"({int((~np.isfinite(peaks)).sum())} non-finite channel peak(s))"
        )
    scales = (peaks / limit).astype(np.float32)
    # Zero channels divide as 1.0 (codes come out 0 anyway — values are 0).
    safe = np.where(scales > 0.0, scales, 1.0)
    shape = [1] * values.ndim
    shape[axis] = -1
    codes = np.clip(np.round(values / safe.reshape(shape)), -limit, limit)
    return codes.astype(_code_dtype(bits)), scales


def dequantize_tensor(codes: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_tensor` (lossy)."""
    return codes.astype(np.float32) * np.float32(scale)


def dequantize_tensor_per_channel(
    codes: np.ndarray, scales: np.ndarray, axis: int = -1
) -> np.ndarray:
    """Inverse of :func:`quantize_tensor_per_channel` (lossy)."""
    codes = np.asarray(codes)
    shape = [1] * codes.ndim
    shape[axis % codes.ndim] = -1
    return codes.astype(np.float32) * np.asarray(scales, dtype=np.float32).reshape(shape)


def _quantize_param(values: np.ndarray, bits: int, scheme: str):
    """Scheme dispatch for one parameter tensor.

    Per-channel applies to matrices (2-D and up, along the trailing axis —
    dense weights here are ``(in, out)``); vectors such as biases always
    quantize per-tensor, where a single scale is already per-channel.
    """
    if scheme == "per_channel" and np.ndim(values) >= 2:
        return quantize_tensor_per_channel(values, axis=-1, bits=bits)
    return quantize_tensor(values, bits=bits)


def quantize_state_dict(
    model: Module, bits: int = 8, scheme: str = "per_tensor"
) -> dict[str, tuple[np.ndarray, float | np.ndarray]]:
    """Quantize every parameter of ``model``; returns name → (codes, scale).

    With ``scheme="per_channel"`` the scale entry of matrix-shaped
    parameters is an array of per-output-channel scales.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"scheme must be one of {SCHEMES}, got {scheme!r}")
    return {
        name: _quantize_param(values, bits, scheme)
        for name, values in model.state_dict().items()
    }


def dequantize_state_dict(
    quantized: dict[str, tuple[np.ndarray, float | np.ndarray]]
) -> dict[str, np.ndarray]:
    """Reconstruct a float state dict from quantized parameters."""
    restored = {}
    for name, (codes, scale) in quantized.items():
        if np.ndim(scale) > 0:
            restored[name] = dequantize_tensor_per_channel(codes, scale, axis=-1)
        else:
            restored[name] = dequantize_tensor(codes, float(scale))
    return restored


def quantize_model(model: Module, bits: int = 8, scheme: str = "per_tensor") -> Module:
    """Round-trip the model's weights through ``bits``-bit quantization.

    After this call the model computes with exactly the values an int8
    deployment would use, so its accuracy drop can be measured directly.
    """
    model.load_state_dict(
        dequantize_state_dict(quantize_state_dict(model, bits=bits, scheme=scheme))
    )
    return model


def model_size_bytes(model: Module, bits: int = 32) -> int:
    """Model parameter footprint at the given weight precision."""
    total = model.num_parameters()
    return int(np.ceil(total * bits / 8))


def compression_report(model: Module, bits: int = 8) -> str:
    """Human-readable footprint comparison used by the bench."""
    full = model_size_bytes(model, bits=32)
    small = model_size_bytes(model, bits=bits)
    return (
        f"{model.num_parameters():,} params: float32 {full / 1024:.0f} KiB "
        f"-> int{bits} {small / 1024:.0f} KiB ({full / small:.1f}x smaller)"
    )
