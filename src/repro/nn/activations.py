"""Activation-function modules wrapping the tensor primitives."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor, where


class ReLU(Module):
    """Rectified linear unit, max(0, x)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    """Exact Gaussian-error linear unit — the ViT MLP non-linearity."""

    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Softmax(Module):
    """Softmax along a configurable axis (default: last)."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return x.softmax(axis=self.axis)


class LeakyReLU(Module):
    """max(x, alpha * x) with a small negative-side slope."""

    def __init__(self, alpha: float = 0.01):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return where(x.data > 0, x, x * self.alpha)
