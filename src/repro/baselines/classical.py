"""Classical fingerprinting references: KNN, SSD and HLF.

SSD (Signal Strength Difference) and HLF (Hyperbolic Location Fingerprint)
are the calibration-free transforms of Fang et al. [18] the paper cites:
both cancel a device's additive gain offset by working with *differences*
of AP readings instead of absolute RSSI — SSD against a single anchor AP,
HLF over all AP pairs.  They remain sensitive to slope/skew heterogeneity,
which is why the paper reports they converge slowly on diverse phones.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import (
    MEAN_CHANNEL,
    DamMixin,
    flatten_channels,
    knn_vote,
    pairwise_euclidean,
    select_channels,
)
from repro.dam.pipeline import DamConfig
from repro.data.fingerprint import FingerprintDataset
from repro.localization import Localizer


class KnnLocalizer(DamMixin, Localizer):
    """Plain distance-weighted KNN on normalized fingerprints."""

    name = "KNN"

    def __init__(
        self,
        k: int = 5,
        channels: tuple[int, ...] = MEAN_CHANNEL,
        dam_config: DamConfig | None = None,
        seed: int = 0,
    ):
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.channels = tuple(channels)
        self.seed = seed
        self._init_dam(dam_config)
        self._gallery: np.ndarray | None = None
        self._gallery_labels: np.ndarray | None = None
        self._n_classes = 0

    def _vectors(self, normalized: np.ndarray) -> np.ndarray:
        return flatten_channels(select_channels(normalized, self.channels))

    def fit(self, train: FingerprintDataset) -> "KnnLocalizer":
        self._remember_rps(train)
        self._fit_dam(train.features)
        rng = np.random.default_rng(self.seed)
        vectors, labels = self._expanded_training_set(
            train.features, train.labels, rng, copies=2
        )
        self._gallery = self._vectors(vectors)
        self._gallery_labels = labels
        self._n_classes = train.n_rps
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._gallery is None:
            raise RuntimeError(f"{self.name} not fitted")
        queries = self._vectors(self._normalize(features))
        distances = pairwise_euclidean(queries, self._gallery)
        return knn_vote(distances, self._gallery_labels, self.k, self._n_classes)


class SsdLocalizer(KnnLocalizer):
    """KNN over Signal-Strength-Difference features.

    Every AP reading is replaced by its difference to an anchor AP (the
    globally strongest AP in the training data), cancelling additive
    device offsets.
    """

    name = "SSD"

    def __init__(
        self,
        k: int = 5,
        channels: tuple[int, ...] = MEAN_CHANNEL,
        dam_config: DamConfig | None = None,
        seed: int = 0,
    ):
        super().__init__(k=k, channels=channels, dam_config=dam_config, seed=seed)
        self._anchor: int | None = None

    def fit(self, train: FingerprintDataset) -> "SsdLocalizer":
        # Anchor choice must precede gallery construction in the base fit.
        mean_channel = train.features[:, :, 2]
        self._anchor = int(mean_channel.mean(axis=0).argmax())
        super().fit(train)
        return self

    def _vectors(self, normalized: np.ndarray) -> np.ndarray:
        if self._anchor is None:
            raise RuntimeError("SSD anchor not selected; call fit first")
        selected = select_channels(normalized, self.channels)
        anchored = selected - selected[:, self._anchor : self._anchor + 1, :]
        return flatten_channels(anchored)


class HlfLocalizer(KnnLocalizer):
    """KNN over Hyperbolic-Location-Fingerprint (pairwise ratio) features.

    In log domain the power ratio of APs i and j is their dB difference,
    so the HLF feature vector is all pairwise differences of the mean
    channel.  Dimensionality is R·(R−1)/2.
    """

    name = "HLF"

    def _vectors(self, normalized: np.ndarray) -> np.ndarray:
        mean_channel = normalized[:, :, 2]
        n_aps = mean_channel.shape[1]
        rows, cols = np.triu_indices(n_aps, k=1)
        pairs = mean_channel[:, rows] - mean_channel[:, cols]
        # Scale by the pair count so distances stay comparable to SSD/KNN.
        return (pairs / np.sqrt(len(rows))).astype(np.float32)
