"""Stacked (optionally denoising) autoencoder substrate.

Both CNNLoc [21] and WiDeep [22] build on stacked autoencoders: CNNLoc as
a feature-compressing front end, WiDeep as an aggressive *denoising* AE.
This module provides one trainable implementation with a corruption knob.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.tensor import Tensor, no_grad


class StackedAutoencoder(nn.Module):
    """Symmetric dense autoencoder with configurable bottleneck stack.

    Parameters
    ----------
    input_dim:
        Flattened fingerprint width.
    hidden_units:
        Encoder widths; the decoder mirrors them.  The last entry is the
        bottleneck ("code") dimension.
    corruption:
        Std-dev of Gaussian noise added to inputs during training — 0
        gives a plain SAE (CNNLoc), large values give the aggressive
        denoising behaviour the paper blames for WiDeep's errors.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_units: tuple[int, ...] = (128, 64),
        corruption: float = 0.0,
        rng=None,
    ):
        super().__init__()
        if not hidden_units:
            raise ValueError("need at least one hidden layer")
        if corruption < 0:
            raise ValueError("corruption must be non-negative")
        self.input_dim = input_dim
        self.hidden_units = tuple(hidden_units)
        self.corruption = corruption

        encoder_layers: list[nn.Module] = []
        width = input_dim
        for units in hidden_units:
            encoder_layers += [nn.Dense(width, units, rng=rng), nn.ReLU()]
            width = units
        self.encoder = nn.Sequential(*encoder_layers)

        decoder_layers: list[nn.Module] = []
        for units in reversed((input_dim,) + self.hidden_units[:-1]):
            decoder_layers += [nn.Dense(width, units, rng=rng), nn.ReLU()]
            width = units
        # The final ReLU would clamp reconstructions; replace with identity.
        decoder_layers[-1] = nn.Identity()
        self.decoder = nn.Sequential(*decoder_layers)

    @property
    def code_dim(self) -> int:
        return self.hidden_units[-1]

    def forward(self, x: Tensor) -> Tensor:
        return self.decoder(self.encoder(x))

    # ------------------------------------------------------------------
    def pretrain(
        self,
        data: np.ndarray,
        epochs: int = 30,
        batch_size: int = 32,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> list[float]:
        """Unsupervised reconstruction training; returns per-epoch losses.

        With ``corruption > 0`` the network reconstructs the *clean* input
        from a noise-corrupted copy (denoising objective).
        """
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[1] != self.input_dim:
            raise ValueError(f"expected (n, {self.input_dim}), got {data.shape}")
        rng = np.random.default_rng(seed)
        optimizer = nn.Adam(self.parameters(), lr=lr)
        loss_fn = nn.MSELoss()
        losses: list[float] = []
        self.train()
        for _epoch in range(epochs):
            order = rng.permutation(len(data))
            epoch_loss = 0.0
            for begin in range(0, len(order), batch_size):
                idx = order[begin : begin + batch_size]
                clean = data[idx]
                noisy = clean + rng.normal(0, self.corruption, clean.shape).astype(
                    np.float32
                ) if self.corruption > 0 else clean
                reconstruction = self(Tensor(noisy))
                loss = loss_fn(reconstruction, clean)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.data) * len(idx)
            losses.append(epoch_loss / len(data))
        self.eval()
        return losses

    def encode(self, data: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Bottleneck codes for ``(n, input_dim)`` data (eval mode)."""
        data = np.asarray(data, dtype=np.float32)
        self.eval()
        chunks = []
        with no_grad():
            for begin in range(0, len(data), batch_size):
                chunk = self.encoder(Tensor(data[begin : begin + batch_size]))
                chunks.append(chunk.data)
        return np.concatenate(chunks, axis=0)

    def reconstruct(self, data: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Decoder outputs for ``(n, input_dim)`` data (eval mode)."""
        data = np.asarray(data, dtype=np.float32)
        self.eval()
        chunks = []
        with no_grad():
            for begin in range(0, len(data), batch_size):
                chunk = self(Tensor(data[begin : begin + batch_size]))
                chunks.append(chunk.data)
        return np.concatenate(chunks, axis=0)
