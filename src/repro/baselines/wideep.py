"""WiDeep baseline [22]: denoising stacked autoencoder + GP classifier.

WiDeep corrupts fingerprints aggressively and trains an autoencoder to
reconstruct them, then classifies the autoencoder representation with a
Gaussian-process classifier.  The paper attributes WiDeep's weak results
to precisely this aggressive denoising — the reconstructions drift far
enough from the inputs that the classifier struggles.  The ``corruption``
default reflects that design choice.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.autoencoder import StackedAutoencoder
from repro.baselines.common import MEAN_CHANNEL, DamMixin, flatten_channels, select_channels
from repro.baselines.gaussian_process import GaussianProcessClassifier
from repro.dam.pipeline import DamConfig
from repro.data.fingerprint import FingerprintDataset
from repro.localization import Localizer


class WiDeepLocalizer(DamMixin, Localizer):
    """WiDeep: denoising SAE features into a Gaussian-process classifier."""

    name = "WiDeep"

    def __init__(
        self,
        sae_units: tuple[int, ...] | None = None,
        corruption: float = 0.18,
        sae_epochs: int = 40,
        lr: float = 1e-3,
        batch_size: int = 32,
        gp_noise: float = 1e-3,
        channels: tuple[int, ...] = MEAN_CHANNEL,
        dam_config: DamConfig | None = None,
        seed: int = 0,
    ):
        super().__init__()
        self.sae_units = tuple(sae_units) if sae_units is not None else None
        self.corruption = corruption
        self.sae_epochs = sae_epochs
        self.lr = lr
        self.batch_size = batch_size
        self.gp_noise = gp_noise
        self.channels = tuple(channels)
        self.seed = seed
        self._init_dam(dam_config)
        self.sae: StackedAutoencoder | None = None
        self.classifier: GaussianProcessClassifier | None = None

    def fit(self, train: FingerprintDataset) -> "WiDeepLocalizer":
        self._remember_rps(train)
        self._fit_dam(train.features)
        rng = np.random.default_rng(self.seed)

        normalized = self._normalize(train.features)
        if self.uses_dam:
            # DAM bolted onto WiDeep stacks its dropout/in-fill on top of
            # the denoising SAE's own corruption; the GP then fits the
            # geometry of corrupted fingerprints while online queries are
            # clean.  The paper observes exactly this failure mode:
            # "WiDeep shows higher mean errors with the inclusion of DAM,
            # as it tends to overfit easily."
            normalized = self._dam.augment(normalized, rng)
        labels = train.labels
        vectors = flatten_channels(select_channels(normalized, self.channels))

        units = self.sae_units or (
            max(4, (3 * vectors.shape[1]) // 4),
            max(2, (2 * vectors.shape[1]) // 5),
        )
        self.sae = StackedAutoencoder(
            input_dim=vectors.shape[1],
            hidden_units=units,
            corruption=self.corruption,
            rng=rng,
        )
        self.sae.pretrain(
            vectors,
            epochs=self.sae_epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            seed=self.seed,
        )

        codes = self.sae.encode(vectors)
        self.classifier = GaussianProcessClassifier(noise=self.gp_noise)
        self.classifier.fit(codes, labels, n_classes=train.n_rps)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.sae is None or self.classifier is None:
            raise RuntimeError("WiDeep not fitted")
        vectors = flatten_channels(
            select_channels(self._normalize(features), self.channels)
        )
        codes = self.sae.encode(vectors)
        return self.classifier.predict(codes)
