"""ANVIL baseline [19]: multi-head attention + Euclidean matching.

ANVIL treats each AP as a token, runs a multi-head attention encoder over
the fingerprint, and matches the resulting embedding against per-RP
gallery embeddings by Euclidean distance.  Training is supervised through
a classification head; inference discards the head and uses the embedding
space (the paper's "Euclidean distance-based matching approach").
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.baselines.common import MEAN_CHANNEL, DamMixin, pairwise_euclidean, select_channels
from repro.dam.pipeline import DamConfig
from repro.data.fingerprint import FingerprintDataset
from repro.localization import Localizer
from repro.tensor import Tensor, no_grad


class _AnvilNetwork(nn.Module):
    """Per-AP token embedding → MSA → pooled embedding → class logits."""

    def __init__(
        self,
        n_aps: int,
        channels: int,
        embed_dim: int,
        heads: int,
        num_classes: int,
        dropout: float,
        rng=None,
    ):
        super().__init__()
        self.token_proj = nn.Dense(channels, embed_dim, rng=rng)
        self.ap_position = nn.Parameter(
            nn.init.truncated_normal((n_aps, embed_dim), std=0.02, rng=rng)
        )
        self.norm = nn.LayerNorm(embed_dim)
        self.attention = nn.MultiHeadSelfAttention(embed_dim, heads, dropout=dropout, rng=rng)
        self.post_norm = nn.LayerNorm(embed_dim)
        self.embed_head = nn.Dense(embed_dim, embed_dim, rng=rng)
        self.classifier = nn.Dense(embed_dim, num_classes, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def embed(self, x: Tensor) -> Tensor:
        """(batch, n_aps, channels) → (batch, embed_dim) embeddings."""
        tokens = self.token_proj(x) + self.ap_position
        tokens = tokens + self.attention(self.norm(tokens))
        pooled = self.post_norm(tokens).mean(axis=1)
        return self.embed_head(pooled).tanh()

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.dropout(self.embed(x)))


class AnvilLocalizer(DamMixin, Localizer):
    """ANVIL: attention encoder with Euclidean gallery matching."""

    name = "ANVIL"

    def __init__(
        self,
        embed_dim: int = 48,
        heads: int = 4,
        dropout: float = 0.1,
        epochs: int = 40,
        lr: float = 2e-3,
        batch_size: int = 32,
        channels: tuple[int, ...] = MEAN_CHANNEL,
        dam_config: DamConfig | None = None,
        seed: int = 0,
    ):
        super().__init__()
        self.embed_dim = embed_dim
        self.channels = tuple(channels)
        self.heads = heads
        self.dropout = dropout
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.seed = seed
        self._init_dam(dam_config)
        self.network: _AnvilNetwork | None = None
        self.trainer: nn.Trainer | None = None
        self._gallery: np.ndarray | None = None  # (n_rps, embed_dim)
        self._gallery_rps: np.ndarray | None = None
        self._compiled = None  # tape-free embed program, built on demand

    def fit(self, train: FingerprintDataset) -> "AnvilLocalizer":
        self._remember_rps(train)
        self._fit_dam(train.features)
        self._compiled = None  # weights change; any compiled engine is stale
        rng = np.random.default_rng(self.seed)

        self.network = _AnvilNetwork(
            n_aps=train.n_aps,
            channels=len(self.channels),
            embed_dim=self.embed_dim,
            heads=self.heads,
            num_classes=train.n_rps,
            dropout=self.dropout,
            rng=rng,
        )

        def augment(batch: np.ndarray, batch_rng: np.random.Generator) -> np.ndarray:
            augmented = self._augment_batch(batch, batch_rng)
            return select_channels(augmented, self.channels).astype(np.float32)

        self.trainer = nn.Trainer(
            self.network,
            nn.CrossEntropyLoss(),
            config=nn.TrainConfig(
                epochs=self.epochs,
                batch_size=self.batch_size,
                lr=self.lr,
                seed=self.seed,
            ),
            augment_fn=augment,
        )
        self.trainer.fit(train.features, train.labels)

        # Build the per-RP gallery: mean embedding of training records.
        embeddings = self._embed(
            select_channels(self._normalize(train.features), self.channels)
        )
        gallery, gallery_rps = [], []
        for rp in np.unique(train.labels):
            gallery.append(embeddings[train.labels == rp].mean(axis=0))
            gallery_rps.append(rp)
        self._gallery = np.stack(gallery)
        self._gallery_rps = np.asarray(gallery_rps)
        return self

    def compile_inference(self):
        """Compile (and cache) the embedding path as a tape-free program
        via :func:`repro.infer.compile_chain` (mirroring
        ``CnnLocLocalizer.compile_inference``).

        The chain reproduces :meth:`_AnvilNetwork.embed` exactly: token
        projection + learned AP positions, the pre-norm residual attention
        block (LayerNorm affine folded into the packed QKV projection),
        post-norm, token mean-pooling and the tanh embedding head.  After
        this call :meth:`predict` runs without touching the autograd tape;
        refitting invalidates the compiled engine.
        """
        if self.network is None:
            raise RuntimeError("ANVIL not fitted")
        from repro.infer import AddConstant, Residual, TokenMeanPool, compile_chain

        net = self.network
        self._compiled = compile_chain(
            [
                net.token_proj,
                AddConstant(net.ap_position.data),
                Residual(net.norm, net.attention),
                net.post_norm,
                TokenMeanPool(axis=1),
                net.embed_head,
                nn.Tanh(),
            ],
            source="ANVIL",
        )
        return self._compiled

    def _embed(self, normalized: np.ndarray) -> np.ndarray:
        if self._compiled is not None:
            return self._compiled.predict_many(
                normalized.astype(np.float32), max_batch=256
            )
        self.network.eval()
        chunks = []
        with no_grad():
            for begin in range(0, len(normalized), 256):
                batch = Tensor(normalized[begin : begin + 256].astype(np.float32))
                chunks.append(self.network.embed(batch).data)
        return np.concatenate(chunks, axis=0)

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._gallery is None:
            raise RuntimeError("ANVIL not fitted")
        queries = self._embed(
            select_channels(self._normalize(features), self.channels)
        )
        distances = pairwise_euclidean(queries, self._gallery)
        return self._gallery_rps[distances.argmin(axis=1)]
