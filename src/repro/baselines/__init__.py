"""The comparison frameworks the paper evaluates against (§VI.C).

* :class:`AnvilLocalizer` — ANVIL [19]: multi-head attention encoder with
  Euclidean-distance matching against per-RP gallery embeddings.
* :class:`SherpaLocalizer` — SHERPA [20]: DNN feature extractor with KNN
  voting in the learned feature space.
* :class:`CnnLocLocalizer` — CNNLoc [21]: stacked autoencoder + 1-D CNN
  classifier.
* :class:`WiDeepLocalizer` — WiDeep [22]: denoising stacked autoencoder +
  Gaussian-process classifier.

Plus calibration-free classical references (SSD / HLF pairwise-difference
fingerprints [18]) and a plain KNN, and the substrates the baselines need
(stacked autoencoder, GP classifier).
"""

from repro.baselines.classical import KnnLocalizer, SsdLocalizer, HlfLocalizer
from repro.baselines.autoencoder import StackedAutoencoder
from repro.baselines.gaussian_process import GaussianProcessClassifier, rbf_kernel
from repro.baselines.anvil import AnvilLocalizer
from repro.baselines.sherpa import SherpaLocalizer
from repro.baselines.cnnloc import CnnLocLocalizer
from repro.baselines.wideep import WiDeepLocalizer

__all__ = [
    "KnnLocalizer",
    "SsdLocalizer",
    "HlfLocalizer",
    "StackedAutoencoder",
    "GaussianProcessClassifier",
    "rbf_kernel",
    "AnvilLocalizer",
    "SherpaLocalizer",
    "CnnLocLocalizer",
    "WiDeepLocalizer",
]
