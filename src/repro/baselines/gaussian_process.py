"""Gaussian-process classifier substrate for the WiDeep baseline.

WiDeep pairs its denoising autoencoder with a Gaussian-process classifier.
A full Laplace-approximated multi-class GPC is overkill for this scale, so
we use the standard least-squares shortcut: GP regression on one-hot
labels (exact posterior mean under a Gaussian likelihood) with an RBF
kernel, followed by an argmax readout.  This keeps the two properties that
matter for the comparison — kernel smoothing over the fingerprint space
and sensitivity to the autoencoder's representation — while remaining a
closed-form solve.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg


def rbf_kernel(a: np.ndarray, b: np.ndarray, length_scale: float) -> np.ndarray:
    """Gaussian RBF kernel matrix between row sets ``a`` and ``b``."""
    if length_scale <= 0:
        raise ValueError("length_scale must be positive")
    a_sq = (a**2).sum(axis=1)[:, None]
    b_sq = (b**2).sum(axis=1)[None, :]
    sq_dist = np.maximum(a_sq + b_sq - 2.0 * a @ b.T, 0.0)
    return np.exp(-0.5 * sq_dist / length_scale**2)


def median_heuristic(data: np.ndarray, max_points: int = 512, seed: int = 0) -> float:
    """Median pairwise distance — the standard automatic length scale."""
    rng = np.random.default_rng(seed)
    if len(data) > max_points:
        data = data[rng.choice(len(data), max_points, replace=False)]
    diffs = data[:, None, :] - data[None, :, :]
    distances = np.sqrt((diffs**2).sum(axis=-1))
    upper = distances[np.triu_indices(len(data), k=1)]
    median = float(np.median(upper)) if len(upper) else 1.0
    return median if median > 1e-9 else 1.0


class GaussianProcessClassifier:
    """One-hot GP regression classifier with an RBF kernel.

    Parameters
    ----------
    length_scale:
        RBF length scale; ``None`` selects it by the median heuristic at
        fit time.
    noise:
        Observation-noise variance added to the kernel diagonal (also the
        ridge regularizer of the solve).
    """

    def __init__(self, length_scale: float | None = None, noise: float = 1e-2):
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.length_scale = length_scale
        self.noise = noise
        self._train_x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._n_classes = 0

    def fit(self, features: np.ndarray, labels: np.ndarray, n_classes: int | None = None):
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2:
            raise ValueError(f"expected (n, d) features, got {features.shape}")
        if len(features) != len(labels):
            raise ValueError("features/labels length mismatch")
        self._n_classes = n_classes or int(labels.max()) + 1
        if self.length_scale is None:
            self.length_scale = median_heuristic(features)
        one_hot = np.zeros((len(labels), self._n_classes))
        one_hot[np.arange(len(labels)), labels] = 1.0
        kernel = rbf_kernel(features, features, self.length_scale)
        kernel[np.diag_indices_from(kernel)] += self.noise
        factor = linalg.cho_factor(kernel, lower=True)
        self._alpha = linalg.cho_solve(factor, one_hot)
        self._train_x = features
        return self

    def _scores(self, features: np.ndarray) -> np.ndarray:
        if self._alpha is None:
            raise RuntimeError("GaussianProcessClassifier not fitted")
        features = np.asarray(features, dtype=np.float64)
        cross = rbf_kernel(features, self._train_x, self.length_scale)
        return cross @ self._alpha

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return self._scores(features).argmax(axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Scores clipped to non-negative and normalized per row."""
        scores = np.maximum(self._scores(features), 0.0)
        totals = scores.sum(axis=1, keepdims=True)
        uniform = np.full_like(scores, 1.0 / scores.shape[1])
        return np.where(totals > 1e-12, scores / np.maximum(totals, 1e-12), uniform)
