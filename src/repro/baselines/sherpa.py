"""SHERPA baseline [20]: a DNN feature extractor with KNN matching.

SHERPA trains a lightweight dense classifier, then performs prediction by
k-nearest-neighbour voting in the network's penultimate feature space —
"KNN enhanced with DNNs".
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.baselines.common import (
    MEAN_CHANNEL,
    DamMixin,
    flatten_channels,
    knn_vote,
    pairwise_euclidean,
    select_channels,
)
from repro.dam.pipeline import DamConfig
from repro.data.fingerprint import FingerprintDataset
from repro.localization import Localizer
from repro.tensor import Tensor, no_grad


class _SherpaNetwork(nn.Module):
    """Dense classifier exposing its penultimate features."""

    def __init__(self, input_dim: int, hidden: tuple[int, ...], num_classes: int, dropout: float, rng=None):
        super().__init__()
        layers: list[nn.Module] = []
        width = input_dim
        for units in hidden:
            layers += [nn.Dense(width, units, rng=rng), nn.ReLU(), nn.Dropout(dropout, rng=rng)]
            width = units
        self.backbone = nn.Sequential(*layers)
        self.classifier = nn.Dense(width, num_classes, rng=rng)

    def features(self, x: Tensor) -> Tensor:
        return self.backbone(x)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.backbone(x))


class SherpaLocalizer(DamMixin, Localizer):
    """SHERPA: DNN feature space + distance-weighted KNN vote."""

    name = "SHERPA"

    def __init__(
        self,
        hidden: tuple[int, ...] = (32, 16),
        k: int = 5,
        dropout: float = 0.1,
        epochs: int = 30,
        lr: float = 2e-3,
        batch_size: int = 32,
        channels: tuple[int, ...] = MEAN_CHANNEL,
        dam_config: DamConfig | None = None,
        seed: int = 0,
    ):
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.hidden = tuple(hidden)
        self.k = k
        self.dropout = dropout
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.channels = tuple(channels)
        self.seed = seed
        self._init_dam(dam_config)
        self.network: _SherpaNetwork | None = None
        self._gallery: np.ndarray | None = None
        self._gallery_labels: np.ndarray | None = None
        self._n_classes = 0

    def fit(self, train: FingerprintDataset) -> "SherpaLocalizer":
        self._remember_rps(train)
        self._fit_dam(train.features)
        self._n_classes = train.n_rps

        self.network = _SherpaNetwork(
            input_dim=train.n_aps * len(self.channels),
            hidden=self.hidden,
            num_classes=train.n_rps,
            dropout=self.dropout,
            rng=np.random.default_rng(self.seed),
        )

        def augment(batch: np.ndarray, batch_rng: np.random.Generator) -> np.ndarray:
            return flatten_channels(
                select_channels(self._augment_batch(batch, batch_rng), self.channels)
            )

        trainer = nn.Trainer(
            self.network,
            nn.CrossEntropyLoss(),
            config=nn.TrainConfig(
                epochs=self.epochs, batch_size=self.batch_size, lr=self.lr, seed=self.seed
            ),
            augment_fn=augment,
        )
        trainer.fit(train.features, train.labels)

        self._gallery = self._feature_space(train.features)
        self._gallery_labels = train.labels.copy()
        return self

    def _feature_space(self, features: np.ndarray) -> np.ndarray:
        vectors = flatten_channels(
            select_channels(self._normalize(features), self.channels)
        )
        self.network.eval()
        chunks = []
        with no_grad():
            for begin in range(0, len(vectors), 256):
                chunk = self.network.features(Tensor(vectors[begin : begin + 256]))
                chunks.append(chunk.data)
        return np.concatenate(chunks, axis=0)

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._gallery is None:
            raise RuntimeError("SHERPA not fitted")
        queries = self._feature_space(features)
        distances = pairwise_euclidean(queries, self._gallery)
        return knn_vote(distances, self._gallery_labels, self.k, self._n_classes)
