"""CNNLoc baseline [21]: stacked autoencoder + 1-D CNN, regression head.

CNNLoc pretrains a stacked autoencoder on the fingerprints, feeds the SAE
bottleneck code to a 1-D convolutional network, and — per the paper's
characterization ("CNNs were used for regression-based localization
prediction") — regresses plan coordinates rather than classifying RPs.
Predicted coordinates are snapped to the nearest reference point for the
common evaluation protocol.

The SAE bottleneck compresses by ~4× like the original (520→…→64 on
UJIIndoorLoc); on our shorter fingerprints the widths scale with the AP
count, keeping the compression ratio rather than the absolute width.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.baselines.autoencoder import StackedAutoencoder
from repro.baselines.common import (
    MEAN_CHANNEL,
    DamMixin,
    flatten_channels,
    pairwise_euclidean,
    select_channels,
)
from repro.dam.pipeline import DamConfig
from repro.data.fingerprint import FingerprintDataset
from repro.localization import Localizer
from repro.tensor import Tensor


class _CnnHead(nn.Module):
    """1-D CNN over the SAE code: (batch, code) → (batch, 2) coordinates."""

    def __init__(self, code_dim: int, dropout: float, rng=None):
        super().__init__()
        self.code_dim = code_dim
        self.conv1 = nn.Conv1d(1, 16, kernel_size=3, padding=1, rng=rng)
        self.conv2 = nn.Conv1d(16, 32, kernel_size=3, padding=1, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=rng)
        self.regressor = nn.Dense(32 * code_dim, 2, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        feat = x.reshape(batch, 1, self.code_dim)
        feat = self.conv1(feat).relu()
        feat = self.conv2(feat).relu()
        feat = self.dropout(feat.reshape(batch, -1))
        return self.regressor(feat)


class _CnnLocNetwork(nn.Module):
    """SAE encoder front end + CNN regression head, fine-tuned jointly."""

    def __init__(self, sae: StackedAutoencoder, head: _CnnHead):
        super().__init__()
        self.sae = sae
        self.head = head

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.sae.encoder(x))


class CnnLocLocalizer(DamMixin, Localizer):
    """CNNLoc: SAE compression + 1-D CNN coordinate regression."""

    name = "CNNLoc"

    def __init__(
        self,
        sae_units: tuple[int, ...] | None = None,
        dropout: float = 0.1,
        sae_epochs: int = 20,
        epochs: int = 40,
        lr: float = 2e-3,
        batch_size: int = 32,
        channels: tuple[int, ...] = MEAN_CHANNEL,
        dam_config: DamConfig | None = None,
        seed: int = 0,
    ):
        super().__init__()
        self.sae_units = tuple(sae_units) if sae_units is not None else None
        self.dropout = dropout
        self.sae_epochs = sae_epochs
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.channels = tuple(channels)
        self.seed = seed
        self._init_dam(dam_config)
        self.network: _CnnLocNetwork | None = None
        self.trainer: nn.Trainer | None = None
        self._coord_scale: np.ndarray | None = None
        self._coord_offset: np.ndarray | None = None
        self._compiled = None

    def _resolve_sae_units(self, input_dim: int) -> tuple[int, ...]:
        """Original CNNLoc compresses ~2×/4×; scale widths to the input."""
        if self.sae_units is not None:
            return self.sae_units
        return (max(8, input_dim // 2), max(8, input_dim // 4))

    def fit(self, train: FingerprintDataset) -> "CnnLocLocalizer":
        self._compiled = None  # refitting invalidates the compiled engine
        self._remember_rps(train)
        self._fit_dam(train.features)
        rng = np.random.default_rng(self.seed)

        vectors = flatten_channels(
            select_channels(self._normalize(train.features), self.channels)
        )
        sae = StackedAutoencoder(
            input_dim=vectors.shape[1],
            hidden_units=self._resolve_sae_units(vectors.shape[1]),
            corruption=0.0,
            rng=rng,
        )
        sae.pretrain(
            vectors,
            epochs=self.sae_epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            seed=self.seed,
        )

        head = _CnnHead(sae.code_dim, self.dropout, rng=rng)
        self.network = _CnnLocNetwork(sae, head)

        # Regression targets: RP coordinates scaled to [0, 1] per axis.
        coords = train.location_of(train.labels).astype(np.float32)
        self._coord_offset = coords.min(axis=0)
        span = coords.max(axis=0) - self._coord_offset
        self._coord_scale = np.where(span < 1e-9, 1.0, span)
        targets = (coords - self._coord_offset) / self._coord_scale

        def augment(batch: np.ndarray, batch_rng: np.random.Generator) -> np.ndarray:
            return flatten_channels(
                select_channels(self._augment_batch(batch, batch_rng), self.channels)
            )

        self.trainer = nn.Trainer(
            self.network,
            nn.MSELoss(),
            config=nn.TrainConfig(
                epochs=self.epochs, batch_size=self.batch_size, lr=self.lr, seed=self.seed
            ),
            augment_fn=augment,
        )
        self.trainer.fit(train.features, targets)
        return self

    def compile_inference(self):
        """Compile (and cache) the SAE encoder + CNN head as a tape-free
        program via :func:`repro.infer.compile_chain`.

        The Conv1d/ReLU/Flatten chain mirrors :meth:`_CnnHead.forward`
        exactly (the compiled Conv1d promotes the 2-D SAE code to a
        single-channel sequence, Dropout vanishes in eval mode).  After
        this call :meth:`predict_coordinates` / :meth:`predict` run
        without touching the autograd tape; refitting invalidates the
        compiled engine.
        """
        if self.network is None:
            raise RuntimeError("CNNLoc not fitted")
        from repro.infer import compile_chain

        head = self.network.head
        self._compiled = compile_chain(
            [
                self.network.sae.encoder,
                head.conv1, nn.ReLU(),
                head.conv2, nn.ReLU(),
                nn.Flatten(),
                head.regressor,
            ],
            source="CNNLoc",
        )
        return self._compiled

    def predict_coordinates(self, features: np.ndarray) -> np.ndarray:
        """Raw regressed plan coordinates in meters, before RP snapping."""
        if self.network is None:
            raise RuntimeError("CNNLoc not fitted")
        vectors = flatten_channels(
            select_channels(self._normalize(features), self.channels)
        )
        if self._compiled is not None:
            scaled = self._compiled.predict_many(vectors, max_batch=self.batch_size)
        else:
            scaled = self.trainer.predict(vectors)
        coords = scaled * self._coord_scale + self._coord_offset
        # Regression can extrapolate; clamp to the surveyed area (plus a
        # small margin) — coordinates outside the building are meaningless.
        low = self._coord_offset - 2.0
        high = self._coord_offset + self._coord_scale + 2.0
        return np.clip(coords, low, high)

    def predict(self, features: np.ndarray) -> np.ndarray:
        coords = self.predict_coordinates(features)
        distances = pairwise_euclidean(coords, self.rp_locations)
        return distances.argmin(axis=1)
