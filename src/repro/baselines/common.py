"""Shared plumbing for the baseline frameworks.

Every baseline natively normalizes raw dBm fingerprints with the
calibration-free min-max map; when a :class:`DamConfig` is supplied
(the Fig. 9 DAM-integration experiment) the framework instead routes its
training batches through a fitted :class:`DataAugmentationModule`, exactly
as VITAL does — demonstrating the paper's claim that DAM "can be
integrated into any ML framework".
"""

from __future__ import annotations

import numpy as np

from repro.dam.pipeline import DamConfig, DataAugmentationModule


class DamMixin:
    """Adds optional DAM support to a Localizer implementation.

    Subclasses call :meth:`_fit_dam` during ``fit`` and then use
    :meth:`_normalize` (deterministic path, online phase) and
    :meth:`_augment_batch` (stochastic path, training) on raw
    ``(n, R, 3)`` dBm features.
    """

    def _init_dam(self, dam_config: DamConfig | None):
        self._dam_config = dam_config
        self._dam: DataAugmentationModule | None = None

    @property
    def uses_dam(self) -> bool:
        return self._dam_config is not None

    def _fit_dam(self, features: np.ndarray) -> None:
        config = self._dam_config or DamConfig(dropout_rate=0.0, noise_sigma=0.0)
        self._dam = DataAugmentationModule(config).fit(features)

    def _normalize(self, features: np.ndarray) -> np.ndarray:
        """Deterministic normalization, shape-preserving ``(n, R, 3)``."""
        if self._dam is None:
            raise RuntimeError("DAM/normalizer used before fit")
        return self._dam.transform(np.asarray(features, dtype=np.float64))

    def _augment_batch(self, features: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Training-time path: normalize, then DAM stages 3-4 if enabled."""
        normalized = self._normalize(features)
        if self.uses_dam:
            normalized = self._dam.augment(normalized, rng)
        return normalized

    def _expanded_training_set(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator,
        copies: int = 2,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dataset-expansion flavour of DAM for non-iterative learners.

        KNN galleries and GP classifiers have no epoch loop to re-augment,
        so DAM integration materializes ``copies`` augmented replicas of
        the training set instead.
        """
        base = self._normalize(features)
        if not self.uses_dam or copies < 1:
            return base, np.asarray(labels)
        parts = [base]
        label_parts = [np.asarray(labels)]
        for _copy in range(copies):
            parts.append(self._dam.augment(base, rng))
            label_parts.append(np.asarray(labels))
        return np.concatenate(parts), np.concatenate(label_parts)


def flatten_channels(normalized: np.ndarray) -> np.ndarray:
    """``(n, R, C)`` → ``(n, R*C)`` float32 model input."""
    normalized = np.asarray(normalized)
    return normalized.reshape(normalized.shape[0], -1).astype(np.float32)


#: The mean-RSSI channel index in the (min, max, mean) layout.
MEAN_CHANNEL: tuple[int, ...] = (2,)


def select_channels(normalized: np.ndarray, channels: tuple[int, ...]) -> np.ndarray:
    """Keep a subset of the (min, max, mean) channels: ``(n, R, C')``.

    The three-channel pixel is VITAL's contribution; the prior-work
    frameworks it compares against consume a single RSSI vector, so the
    baselines default to the mean channel only.
    """
    normalized = np.asarray(normalized)
    return normalized[:, :, list(channels)]


def knn_vote(
    distances: np.ndarray, labels: np.ndarray, k: int, n_classes: int
) -> np.ndarray:
    """Distance-weighted k-nearest-neighbour vote.

    Parameters
    ----------
    distances:
        ``(n_query, n_gallery)`` pairwise distances.
    labels:
        ``(n_gallery,)`` integer labels.
    k:
        Neighbour count (clipped to the gallery size).
    n_classes:
        Total label count.

    Returns
    -------
    ``(n_query,)`` predicted labels.
    """
    k = min(k, distances.shape[1])
    neighbour_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
    predictions = np.empty(distances.shape[0], dtype=np.int64)
    for row in range(distances.shape[0]):
        idx = neighbour_idx[row]
        weights = 1.0 / (distances[row, idx] + 1e-6)
        votes = np.bincount(labels[idx], weights=weights, minlength=n_classes)
        predictions[row] = int(votes.argmax())
    return predictions


def pairwise_euclidean(queries: np.ndarray, gallery: np.ndarray) -> np.ndarray:
    """``(n_q, d) × (n_g, d)`` → ``(n_q, n_g)`` Euclidean distances."""
    q_sq = (queries**2).sum(axis=1)[:, None]
    g_sq = (gallery**2).sum(axis=1)[None, :]
    cross = queries @ gallery.T
    return np.sqrt(np.maximum(q_sq + g_sq - 2.0 * cross, 0.0))
