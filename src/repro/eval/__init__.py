"""Evaluation harness: metrics, framework registry, experiment runner.

This package turns the library into the paper's evaluation section:
:mod:`repro.eval.runner` executes the framework × building × device
comparison matrices behind Figs. 7, 8, 9 and 10, and
:mod:`repro.eval.sweeps` the hyperparameter sensitivity studies behind
Figs. 5 and 6.
"""

from repro.eval.metrics import ErrorStats, error_stats, improvement_pct
from repro.eval.frameworks import (
    FRAMEWORK_NAMES,
    make_framework,
    default_vital_config,
)
from repro.eval.runner import (
    EvalProtocol,
    FrameworkRun,
    ComparisonResult,
    prepare_building_data,
    evaluate_framework,
    run_comparison,
    run_dam_ablation,
)
from repro.eval.sweeps import sweep_image_patch, sweep_heads_mlp
from repro.eval.reporting import (
    save_result,
    load_result,
    summary_table,
    cdf_table,
    training_cost_table,
)

__all__ = [
    "ErrorStats",
    "error_stats",
    "improvement_pct",
    "FRAMEWORK_NAMES",
    "make_framework",
    "default_vital_config",
    "EvalProtocol",
    "FrameworkRun",
    "ComparisonResult",
    "prepare_building_data",
    "evaluate_framework",
    "run_comparison",
    "run_dam_ablation",
    "sweep_image_patch",
    "sweep_heads_mlp",
    "save_result",
    "load_result",
    "summary_table",
    "cdf_table",
    "training_cost_table",
]
