"""Experiment-result persistence and reporting.

Comparison runs are expensive (minutes of CPU training); this module
serializes :class:`~repro.eval.runner.ComparisonResult` to JSON so
figures can be re-rendered, diffed across code versions, or post-
processed without re-running the matrix.  It also renders the standard
report blocks (summary table, CDF) shared by the CLI and the benches.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.eval.metrics import within_radius
from repro.eval.runner import ComparisonResult, FrameworkRun
from repro.viz import ascii_table

_FORMAT_VERSION = 1


def save_result(result: ComparisonResult, path: str) -> str:
    """Serialize a comparison result to JSON (errors included verbatim)."""
    payload = {
        "version": _FORMAT_VERSION,
        "runs": [
            {
                "framework": run.framework,
                "building": run.building,
                "errors": [float(e) for e in run.errors],
                "per_device": {k: float(v) for k, v in run.per_device.items()},
                "train_seconds": run.train_seconds,
            }
            for run in result.runs
        ],
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


def load_result(path: str) -> ComparisonResult:
    """Inverse of :func:`save_result`."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {payload.get('version')}")
    result = ComparisonResult()
    for entry in payload["runs"]:
        result.runs.append(
            FrameworkRun(
                framework=entry["framework"],
                building=entry["building"],
                errors=np.asarray(entry["errors"], dtype=np.float64),
                per_device=dict(entry["per_device"]),
                train_seconds=float(entry["train_seconds"]),
            )
        )
    return result


def summary_table(result: ComparisonResult, decimals: int = 2) -> str:
    """Framework × (mean, median, p90, max) overall summary block."""
    rows = []
    for framework in result.frameworks():
        stats = result.overall_stats(framework)
        rows.append([framework, stats.mean, stats.median, stats.p90, stats.max])
    return ascii_table(
        rows,
        ["framework", "mean m", "median m", "p90 m", "max m"],
        decimals=decimals,
    )


def cdf_table(
    result: ComparisonResult, radii: tuple[float, ...] = (1.0, 2.0, 3.0, 5.0)
) -> str:
    """Fraction of test queries within each radius, per framework.

    The error CDF is the standard figure of merit in the indoor-
    localization literature beyond mean error.
    """
    rows = []
    for framework in result.frameworks():
        errors = result.pooled_errors(framework)
        rows.append([framework] + [within_radius(errors, r) for r in radii])
    return ascii_table(
        rows,
        ["framework"] + [f"≤{r:g} m" for r in radii],
        decimals=2,
    )


def training_cost_table(result: ComparisonResult) -> str:
    """Wall-clock training cost per framework (summed over buildings)."""
    totals: dict[str, float] = {}
    for run in result.runs:
        totals[run.framework] = totals.get(run.framework, 0.0) + run.train_seconds
    rows = [[name, seconds] for name, seconds in totals.items()]
    return ascii_table(rows, ["framework", "train s"], decimals=1)
