"""Hyperparameter sensitivity sweeps (paper §VI.B, Figs. 5 and 6).

Each sweep trains a full VITAL framework per grid point on one building
and records the mean localization error, reproducing the two studies the
paper uses to pick its final configuration:

* Fig. 5 — RSSI image size × patch size surface.
* Fig. 6 — MSA head count × fine-tuning MLP depth heatmap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.fingerprint import FingerprintDataset
from repro.nn.trainer import TrainConfig
from repro.dam.pipeline import DamConfig
from repro.vit.config import VitalConfig
from repro.vit.localizer import VitalLocalizer
from repro.vit.patching import has_partial_patches


@dataclass
class SweepResult:
    """Grid of mean errors over two hyperparameter axes."""

    row_name: str
    col_name: str
    row_values: list
    col_values: list
    mean_error: np.ndarray  # (rows, cols), NaN for invalid combinations
    notes: dict[tuple, str] = field(default_factory=dict)

    def best(self) -> tuple:
        """(row_value, col_value, error) of the grid minimum."""
        masked = np.where(np.isnan(self.mean_error), np.inf, self.mean_error)
        i, j = np.unravel_index(int(masked.argmin()), masked.shape)
        return self.row_values[i], self.col_values[j], float(self.mean_error[i, j])


def _evaluate(config: VitalConfig, train: FingerprintDataset, test: FingerprintDataset, seed: int) -> float:
    localizer = VitalLocalizer(config, seed=seed)
    localizer.fit(train)
    return float(localizer.errors_m(test).mean())


def sweep_image_patch(
    train: FingerprintDataset,
    test: FingerprintDataset,
    image_sizes: list[int],
    patch_sizes: list[int],
    epochs: int = 60,
    seed: int = 0,
    base_config: VitalConfig | None = None,
    verbose: bool = False,
) -> SweepResult:
    """Fig. 5: mean error over the (image size, patch size) grid.

    Grid points where the patch exceeds the image are skipped (NaN);
    points with partial boundary patches are annotated — the paper
    observes those discard features and lose accuracy.
    """
    base = base_config or VitalConfig.fast()
    result = SweepResult(
        row_name="image_size",
        col_name="patch_size",
        row_values=list(image_sizes),
        col_values=list(patch_sizes),
        mean_error=np.full((len(image_sizes), len(patch_sizes)), np.nan),
    )
    for i, image_size in enumerate(image_sizes):
        for j, patch_size in enumerate(patch_sizes):
            if patch_size > image_size:
                result.notes[(image_size, patch_size)] = "invalid"
                continue
            config = base.with_updates(
                image_size=image_size,
                patch_size=patch_size,
                dam=base.dam.with_image_size(image_size),
                train=TrainConfig(**{**base.train.__dict__, "epochs": epochs}),
            )
            error = _evaluate(config, train, test, seed)
            result.mean_error[i, j] = error
            if has_partial_patches(image_size, patch_size):
                result.notes[(image_size, patch_size)] = "partial patches discarded"
            if verbose:
                print(f"image={image_size:3d} patch={patch_size:2d} -> {error:.2f} m")
    return result


def sweep_heads_mlp(
    train: FingerprintDataset,
    test: FingerprintDataset,
    head_counts: list[int],
    mlp_layer_counts: list[int],
    epochs: int = 60,
    seed: int = 0,
    base_config: VitalConfig | None = None,
    verbose: bool = False,
) -> SweepResult:
    """Fig. 6: mean error over (MSA heads, fine-tuning MLP layers).

    ``mlp_layer_counts`` follows the paper's counting: layer count L means
    L−1 hidden layers plus the final RP-sized layer; L=2 with a 128-unit
    hidden layer is the paper's pick.  Head counts must divide the
    projection width — indivisible combinations are skipped (NaN).
    """
    base = base_config or VitalConfig.fast()
    hidden_menu = {1: (), 2: (128,), 3: (128, 64), 4: (128, 64, 32), 5: (128, 64, 32, 16)}
    result = SweepResult(
        row_name="msa_heads",
        col_name="mlp_layers",
        row_values=list(head_counts),
        col_values=list(mlp_layer_counts),
        mean_error=np.full((len(head_counts), len(mlp_layer_counts)), np.nan),
    )
    for i, heads in enumerate(head_counts):
        if base.projection_dim % heads != 0:
            for layers in mlp_layer_counts:
                result.notes[(heads, layers)] = "heads do not divide projection_dim"
            continue
        for j, layers in enumerate(mlp_layer_counts):
            if layers not in hidden_menu:
                result.notes[(heads, layers)] = "unsupported depth"
                continue
            config = base.with_updates(
                num_heads=heads,
                head_units=hidden_menu[layers],
                train=TrainConfig(**{**base.train.__dict__, "epochs": epochs}),
            )
            error = _evaluate(config, train, test, seed)
            result.mean_error[i, j] = error
            if verbose:
                print(f"heads={heads} layers={layers} -> {error:.2f} m")
    return result
