"""Experiment runner for the framework comparison matrices.

Protocol (mirrors §VI.A):

* per building, survey all *base* devices, 1 m RP grid, 5 samples per
  visit reduced to (min, max, mean);
* 80/20 stratified train/test split of the base-device records;
* group training — each framework sees the pooled multi-device training
  set (the paper's calibration-free recipe);
* Fig. 10 protocol additionally surveys the *extended* devices and uses
  **only** their records as the test set (zero extended-device training).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.buildings import benchmark_buildings
from repro.data.collection import SurveyConfig, collect_fingerprints
from repro.data.devices import BASE_DEVICES, EXTENDED_DEVICES
from repro.data.fingerprint import FingerprintDataset
from repro.data.splits import train_test_split
from repro.eval.frameworks import make_framework
from repro.eval.metrics import ErrorStats, error_stats
from repro.localization import Localizer
from repro.radio.environment import Building


@dataclass(frozen=True)
class EvalProtocol:
    """Shared experimental protocol for all comparison benchmarks."""

    n_visits: int = 1
    samples_per_visit: int = 5
    test_fraction: float = 0.2
    seed: int = 0
    scale: str = "fast"

    def survey_config(self) -> SurveyConfig:
        return SurveyConfig(
            samples_per_visit=self.samples_per_visit,
            n_visits=self.n_visits,
            seed=self.seed,
        )


@dataclass
class FrameworkRun:
    """One (framework, building) evaluation outcome."""

    framework: str
    building: str
    errors: np.ndarray
    per_device: dict[str, float] = field(default_factory=dict)
    train_seconds: float = 0.0

    @property
    def stats(self) -> ErrorStats:
        return error_stats(self.errors)


@dataclass
class ComparisonResult:
    """All runs of a comparison experiment, with aggregation helpers."""

    runs: list[FrameworkRun] = field(default_factory=list)

    def frameworks(self) -> list[str]:
        seen: list[str] = []
        for run in self.runs:
            if run.framework not in seen:
                seen.append(run.framework)
        return seen

    def buildings(self) -> list[str]:
        seen: list[str] = []
        for run in self.runs:
            if run.building not in seen:
                seen.append(run.building)
        return seen

    def run_for(self, framework: str, building: str) -> FrameworkRun:
        for run in self.runs:
            if run.framework == framework and run.building == building:
                return run
        raise KeyError(f"no run for ({framework}, {building})")

    def pooled_errors(self, framework: str) -> np.ndarray:
        """All test errors of a framework across buildings."""
        parts = [r.errors for r in self.runs if r.framework == framework]
        if not parts:
            raise KeyError(f"no runs for framework {framework}")
        return np.concatenate(parts)

    def overall_stats(self, framework: str) -> ErrorStats:
        """The Fig. 8 / Fig. 10 box-plot numbers: stats across buildings."""
        return error_stats(self.pooled_errors(framework))

    def mean_error_grid(self) -> tuple[list[str], list[str], np.ndarray]:
        """(frameworks, buildings, mean-error matrix) for Fig. 7."""
        frameworks = self.frameworks()
        buildings = self.buildings()
        grid = np.zeros((len(frameworks), len(buildings)))
        for i, framework in enumerate(frameworks):
            for j, building in enumerate(buildings):
                grid[i, j] = self.run_for(framework, building).stats.mean
        return frameworks, buildings, grid

    def device_grid(self, framework: str) -> tuple[list[str], list[str], np.ndarray]:
        """(devices, buildings, per-device mean error) for one framework."""
        buildings = self.buildings()
        devices: list[str] = []
        for run in self.runs:
            if run.framework == framework:
                for device in run.per_device:
                    if device not in devices:
                        devices.append(device)
        grid = np.full((len(devices), len(buildings)), np.nan)
        for j, building in enumerate(buildings):
            run = self.run_for(framework, building)
            for i, device in enumerate(devices):
                if device in run.per_device:
                    grid[i, j] = run.per_device[device]
        return devices, buildings, grid


# ----------------------------------------------------------------------
def prepare_building_data(
    building: Building,
    protocol: EvalProtocol,
    extended: bool = False,
) -> tuple[FingerprintDataset, FingerprintDataset]:
    """Survey a building and return (train, test) per the protocol.

    With ``extended=True`` the test set consists exclusively of records
    from the three extended devices (Fig. 10); training data is the same
    base-device 80% split either way, so base and extended results are
    directly comparable.
    """
    base = collect_fingerprints(building, BASE_DEVICES, protocol.survey_config())
    train, base_test = train_test_split(
        base, test_fraction=protocol.test_fraction, seed=protocol.seed
    )
    if not extended:
        return train, base_test
    extended_data = collect_fingerprints(
        building, EXTENDED_DEVICES, protocol.survey_config()
    )
    return train, extended_data


def evaluate_framework(
    localizer: Localizer,
    train: FingerprintDataset,
    test: FingerprintDataset,
) -> FrameworkRun:
    """Fit on ``train``, measure per-record and per-device errors on ``test``."""
    import time

    start = time.perf_counter()
    localizer.fit(train)
    elapsed = time.perf_counter() - start
    errors = localizer.errors_m(test)
    per_device: dict[str, float] = {}
    for device in sorted(set(test.devices.tolist())):
        mask = test.devices == device
        per_device[device] = float(errors[mask].mean())
    return FrameworkRun(
        framework=localizer.name,
        building=train.building,
        errors=errors,
        per_device=per_device,
        train_seconds=elapsed,
    )


def run_comparison(
    framework_names: list[str],
    buildings: list[Building] | None = None,
    protocol: EvalProtocol | None = None,
    extended: bool = False,
    with_dam: bool | None = None,
    verbose: bool = False,
) -> ComparisonResult:
    """The Figs. 7/8/10 experiment: frameworks × buildings.

    Parameters
    ----------
    framework_names:
        Which frameworks to run (see :data:`FRAMEWORK_NAMES`).
    buildings:
        Buildings to survey; default: all four benchmark buildings.
    protocol:
        Evaluation protocol; default :class:`EvalProtocol`.
    extended:
        Use the extended-device test protocol (Fig. 10).
    with_dam:
        Forwarded to :func:`make_framework` (``None`` = published designs).
    """
    protocol = protocol or EvalProtocol()
    buildings = buildings if buildings is not None else benchmark_buildings()
    result = ComparisonResult()
    for building in buildings:
        train, test = prepare_building_data(building, protocol, extended=extended)
        for name in framework_names:
            localizer = make_framework(
                name, seed=protocol.seed, with_dam=with_dam, scale=protocol.scale
            )
            run = evaluate_framework(localizer, train, test)
            result.runs.append(run)
            if verbose:
                print(f"{building.name} {name:7s} {run.stats.row()}")
    return result


def run_dam_ablation(
    framework_names: list[str],
    buildings: list[Building] | None = None,
    protocol: EvalProtocol | None = None,
    verbose: bool = False,
) -> dict[str, dict[bool, ComparisonResult]]:
    """The Fig. 9 experiment: every framework with and without DAM.

    Returns ``{framework: {True: result_with_dam, False: result_without}}``.
    """
    protocol = protocol or EvalProtocol()
    buildings = buildings if buildings is not None else benchmark_buildings()
    out: dict[str, dict[bool, ComparisonResult]] = {}
    for name in framework_names:
        out[name] = {}
        for dam_on in (False, True):
            out[name][dam_on] = run_comparison(
                [name],
                buildings=buildings,
                protocol=protocol,
                with_dam=dam_on,
                verbose=verbose,
            )
    return out
