"""Multi-seed repetition of comparison experiments.

Single-seed rankings on small test sets can flip on noise; this module
repeats a comparison across seeds and reports mean ± std of each
framework's mean error, plus how often each framework ranks first — the
robustness check reviewers ask of Table/Fig claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.eval.runner import ComparisonResult, EvalProtocol, run_comparison
from repro.radio.environment import Building
from repro.viz import ascii_table


@dataclass
class MultiSeedResult:
    """Aggregated outcome of repeated comparison runs."""

    framework_names: list[str]
    seeds: list[int]
    #: mean error per (framework, seed)
    mean_errors: np.ndarray
    per_seed_results: list[ComparisonResult] = field(default_factory=list)

    def mean_of_means(self, framework: str) -> float:
        row = self.framework_names.index(framework)
        return float(self.mean_errors[row].mean())

    def std_of_means(self, framework: str) -> float:
        row = self.framework_names.index(framework)
        return float(self.mean_errors[row].std())

    def win_rate(self, framework: str) -> float:
        """Fraction of seeds where the framework has the lowest mean error."""
        row = self.framework_names.index(framework)
        wins = (self.mean_errors[row] == self.mean_errors.min(axis=0)).sum()
        return float(wins) / len(self.seeds)

    def table(self) -> str:
        rows = []
        for name in self.framework_names:
            rows.append([
                name,
                self.mean_of_means(name),
                self.std_of_means(name),
                self.win_rate(name),
            ])
        return ascii_table(
            rows,
            ["framework", "mean of means m", "std m", "win rate"],
        )


def run_multi_seed(
    framework_names: list[str],
    buildings: list[Building],
    seeds: list[int],
    base_protocol: EvalProtocol | None = None,
    extended: bool = False,
    verbose: bool = False,
) -> MultiSeedResult:
    """Repeat :func:`run_comparison` for each seed and aggregate.

    The seed drives everything downstream — the survey noise draws, the
    train/test split, weight init and augmentation — so each repetition
    is a fully independent experiment on the same buildings.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    base_protocol = base_protocol or EvalProtocol()
    mean_errors = np.zeros((len(framework_names), len(seeds)))
    per_seed = []
    for j, seed in enumerate(seeds):
        protocol = replace(base_protocol, seed=seed)
        result = run_comparison(
            framework_names,
            buildings=buildings,
            protocol=protocol,
            extended=extended,
            verbose=verbose,
        )
        per_seed.append(result)
        for i, name in enumerate(framework_names):
            mean_errors[i, j] = result.overall_stats(name).mean
    return MultiSeedResult(
        framework_names=list(framework_names),
        seeds=list(seeds),
        mean_errors=mean_errors,
        per_seed_results=per_seed,
    )
