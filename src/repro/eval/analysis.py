"""Diagnostic analyses for fingerprint databases and trained localizers.

Tools an adopter needs before trusting a deployment:

* :func:`ap_coverage` — how many APs are visible per reference point
  (sparse coverage predicts poor accuracy in that corridor segment).
* :func:`rp_ambiguity` — for each RP, the physical distance to the RP
  whose fingerprint is *nearest in signal space*; large values flag
  aliasing (far-apart places that look alike to the radio).
* :func:`walk_path` — online-phase simulation of a user walking the
  survey path with one device, localizing at every step; returns the
  per-step error profile the paper's corridor figures imply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.common import pairwise_euclidean
from repro.data.fingerprint import FingerprintDataset, reduce_samples
from repro.localization import Localizer
from repro.radio.device import NOT_VISIBLE_DBM, DeviceProfile
from repro.radio.environment import Building


def ap_coverage(dataset: FingerprintDataset) -> np.ndarray:
    """Mean fraction of visible APs per RP, shape ``(n_rps,)``.

    Visibility is measured on the mean channel; records from all devices
    are pooled, so device floors are averaged in — matching what a group-
    trained model actually sees.
    """
    visible = dataset.features[:, :, 2] > NOT_VISIBLE_DBM
    fractions = np.zeros(dataset.n_rps)
    counts = np.zeros(dataset.n_rps)
    for record_idx in range(len(dataset)):
        rp = dataset.labels[record_idx]
        fractions[rp] += visible[record_idx].mean()
        counts[rp] += 1
    counts[counts == 0] = 1.0
    return fractions / counts


def rp_ambiguity(dataset: FingerprintDataset) -> np.ndarray:
    """Physical distance (m) to the signal-space nearest *other* RP.

    Uses the per-RP mean fingerprint (mean channel, pooled devices).
    Entries well above the RP spacing indicate aliasing: the radio
    environment makes distant places look similar.
    """
    centroids = np.zeros((dataset.n_rps, dataset.n_aps))
    counts = np.zeros(dataset.n_rps)
    mean_channel = dataset.features[:, :, 2]
    for record_idx in range(len(dataset)):
        rp = dataset.labels[record_idx]
        centroids[rp] += mean_channel[record_idx]
        counts[rp] += 1
    present = counts > 0
    centroids[present] /= counts[present, None]

    distances = pairwise_euclidean(centroids, centroids)
    np.fill_diagonal(distances, np.inf)
    distances[~present] = np.inf
    distances[:, ~present] = np.inf
    nearest = distances.argmin(axis=1)
    physical = np.linalg.norm(
        dataset.rp_locations - dataset.rp_locations[nearest], axis=1
    )
    physical[~present] = np.nan
    return physical


@dataclass
class WalkResult:
    """Outcome of an online walk simulation."""

    rp_indices: np.ndarray
    predicted_rps: np.ndarray
    errors_m: np.ndarray
    device: str

    @property
    def mean_error(self) -> float:
        return float(self.errors_m.mean())

    def worst_segment(self, window: int = 5) -> tuple[int, float]:
        """(start RP, mean error) of the worst ``window``-step stretch."""
        if len(self.errors_m) < window:
            return 0, float(self.errors_m.mean())
        sums = np.convolve(self.errors_m, np.ones(window), mode="valid") / window
        start = int(sums.argmax())
        return start, float(sums[start])


def walk_path(
    localizer: Localizer,
    building: Building,
    device: DeviceProfile,
    samples_per_step: int = 5,
    rp_spacing_m: float = 1.0,
    seed: int = 0,
) -> WalkResult:
    """Walk the survey path, localizing a fresh scan at every RP.

    This is the deployment loop of Fig. 3's online phase: at each step the
    phone captures ``samples_per_step`` scans, reduces them to the
    (min, max, mean) fingerprint, and asks the trained localizer where it
    is.  Fresh noise is drawn per step, so this measures true online
    behaviour rather than memorized survey records.
    """
    rng = np.random.default_rng(seed)
    points = building.reference_points(rp_spacing_m)
    fingerprints = []
    for location in points:
        burst = building.sample_rssi(location, device, rng, n_samples=samples_per_step)
        fingerprints.append(reduce_samples(burst))
    features = np.stack(fingerprints)
    predicted = localizer.predict(features)
    truth = np.array([[p.x, p.y] for p in points])
    errors = np.linalg.norm(localizer.rp_locations[predicted] - truth, axis=1)
    return WalkResult(
        rp_indices=np.arange(len(points)),
        predicted_rps=predicted,
        errors_m=errors,
        device=device.name,
    )
