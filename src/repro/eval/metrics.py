"""Localization error metrics.

The paper reports min (lower whisker), mean (red bar) and max (upper
whisker) localization error in meters; :class:`ErrorStats` adds the
percentiles and precision measures used in the wider indoor-localization
literature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ErrorStats:
    """Summary statistics of per-record localization errors (meters)."""

    mean: float
    min: float
    max: float
    median: float
    p75: float
    p90: float
    std: float
    count: int

    def row(self) -> str:
        """Fixed-width table row used by the benchmark harnesses."""
        return (
            f"mean={self.mean:5.2f}  min={self.min:5.2f}  max={self.max:5.2f}  "
            f"median={self.median:5.2f}  p90={self.p90:5.2f}  n={self.count}"
        )


def error_stats(errors: np.ndarray) -> ErrorStats:
    """Compute :class:`ErrorStats` from a vector of errors in meters."""
    errors = np.asarray(errors, dtype=np.float64)
    if errors.size == 0:
        raise ValueError("cannot summarize an empty error vector")
    if (errors < 0).any():
        raise ValueError("localization errors cannot be negative")
    return ErrorStats(
        mean=float(errors.mean()),
        min=float(errors.min()),
        max=float(errors.max()),
        median=float(np.median(errors)),
        p75=float(np.percentile(errors, 75)),
        p90=float(np.percentile(errors, 90)),
        std=float(errors.std()),
        count=int(errors.size),
    )


def improvement_pct(baseline_error: float, improved_error: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` in percent.

    Matches the paper's headline arithmetic: VITAL 1.18 m vs ANVIL 1.9 m
    → (1.9 − 1.18) / 1.9 ≈ 38%…41% depending on rounding.
    """
    if baseline_error <= 0:
        raise ValueError("baseline error must be positive")
    return 100.0 * (baseline_error - improved_error) / baseline_error


def within_radius(errors: np.ndarray, radius_m: float) -> float:
    """Fraction of predictions within ``radius_m`` of the truth (CDF point)."""
    errors = np.asarray(errors, dtype=np.float64)
    if radius_m < 0:
        raise ValueError("radius must be non-negative")
    return float((errors <= radius_m).mean())
