"""Framework registry: build any of the five compared localizers by name.

Keeps construction policy (scale preset, DAM integration, seeding) in one
place so every benchmark constructs frameworks identically.
"""

from __future__ import annotations

from repro.dam.pipeline import DamConfig
from repro.localization import Localizer
from repro.vit.config import VitalConfig
from repro.vit.localizer import VitalLocalizer
from repro.baselines import (
    AnvilLocalizer,
    CnnLocLocalizer,
    HlfLocalizer,
    KnnLocalizer,
    SherpaLocalizer,
    SsdLocalizer,
    WiDeepLocalizer,
)

#: The five frameworks of the paper's comparison (§VI.C), in paper order.
FRAMEWORK_NAMES: tuple[str, ...] = ("VITAL", "ANVIL", "SHERPA", "CNNLoc", "WiDeep")

#: Additional classical references available to the examples/benches.
CLASSICAL_NAMES: tuple[str, ...] = ("KNN", "SSD", "HLF")

#: DAM configuration used when integrating DAM into a baseline (Fig. 9);
#: vector mode — no image replication, just normalize + dropout + in-fill.
BASELINE_DAM = DamConfig(dropout_rate=0.10, noise_sigma=0.05, image_size=None)


def default_vital_config(scale: str = "fast") -> VitalConfig:
    """The VITAL configuration for a given experiment scale."""
    if scale == "fast":
        return VitalConfig.fast()
    if scale == "paper":
        return VitalConfig.paper()
    raise ValueError(f"unknown scale {scale!r}; use 'fast' or 'paper'")


def make_framework(
    name: str,
    seed: int = 0,
    with_dam: bool | None = None,
    scale: str = "fast",
    epochs: int | None = None,
) -> Localizer:
    """Construct a framework by name.

    Parameters
    ----------
    name:
        One of :data:`FRAMEWORK_NAMES` or :data:`CLASSICAL_NAMES`.
    seed:
        Seed forwarded to the framework.
    with_dam:
        ``None`` keeps each framework's published design: DAM *on* for
        VITAL (it is part of the framework), *off* for everything else.
        ``True``/``False`` force the stochastic DAM stages on/off — the
        two arms of the Fig. 9 integration study.
    scale:
        ``"fast"`` (CI-sized) or ``"paper"`` (full 206×206 images).
    epochs:
        Optional override of the framework's training epochs.
    """
    if name == "VITAL":
        vital_dam = True if with_dam is None else with_dam
        config = default_vital_config(scale)
        if epochs is not None:
            config = config.with_updates(
                train=type(config.train)(**{**config.train.__dict__, "epochs": epochs})
            )
        return VitalLocalizer(config, seed=seed, use_dam_augmentation=vital_dam)
    dam_config = BASELINE_DAM if with_dam else None
    # Stochastic augmentation slows convergence; DAM arms of the
    # iterative baselines get a doubled epoch budget so each arm is
    # trained to comparable convergence (as the paper's per-framework
    # tuning would).
    dam_epoch_boost = 2 if with_dam else 1
    if name == "ANVIL":
        kwargs = {"epochs": (epochs if epochs is not None else 40 * dam_epoch_boost)}
        return AnvilLocalizer(dam_config=dam_config, seed=seed, **kwargs)
    if name == "SHERPA":
        kwargs = {"epochs": (epochs if epochs is not None else 30 * dam_epoch_boost)}
        return SherpaLocalizer(dam_config=dam_config, seed=seed, **kwargs)
    if name == "CNNLoc":
        kwargs = {"epochs": (epochs if epochs is not None else 40 * dam_epoch_boost)}
        return CnnLocLocalizer(dam_config=dam_config, seed=seed, **kwargs)
    if name == "WiDeep":
        return WiDeepLocalizer(dam_config=dam_config, seed=seed)
    if name == "KNN":
        return KnnLocalizer(dam_config=dam_config, seed=seed)
    if name == "SSD":
        return SsdLocalizer(dam_config=dam_config, seed=seed)
    if name == "HLF":
        return HlfLocalizer(dam_config=dam_config, seed=seed)
    known = FRAMEWORK_NAMES + CLASSICAL_NAMES
    raise ValueError(f"unknown framework {name!r}; known: {known}")
