"""Tape-free fused inference engine for :class:`repro.vit.VitalModel`.

An :class:`InferenceSession` compiles a trained model once into flat,
C-contiguous float32 weight arrays plus a preallocated set of scratch
buffers, then serves predictions without touching the autograd tape at
all:

* the three Q/K/V projections of every attention block are packed into a
  single ``(D, 3D)`` matmul;
* LayerNorm gain/shift parameters are folded into the matmul that follows
  each normalization (:func:`repro.infer.ops.fold_norm_into_dense`);
* the patch-extraction gather grid is taken from the same per-geometry
  cache the model uses (:func:`repro.vit.patching.patch_index_grid`);
* every large intermediate lives in a scratch buffer sized for the
  configured micro-batch and is reused across calls.

``predict`` serves one micro-batch; ``predict_many`` chunks an arbitrary
workload through the same buffers, which is the server-style entry point.
"""

from __future__ import annotations

import time

import numpy as np

from repro import nn
from repro.infer.kernels import (
    PackedWeight,
    autotune_gemm,
    resolve_kernel,
)
from repro.infer.ops import (
    contiguous_f32,
    dense_,
    fold_norm_into_dense,
    gelu_,
    layer_norm_,
    softmax_,
)
from repro.vit.model import VitalModel
from repro.vit.patching import patch_index_grid


#: Version tag of the picklable session snapshot shipped to serving workers.
SNAPSHOT_FORMAT = "repro.infer.session/v1"

#: State keys every restorable session snapshot must carry.  ``__setstate__``
#: dereferences these while rebuilding scratch buffers, so a snapshot missing
#: any of them is truncated/corrupted and must be rejected up front with a
#: clear error instead of an AttributeError deep inside allocation.
_REQUIRED_STATE_KEYS = (
    "max_batch",
    "image_size",
    "channels",
    "patch_size",
    "num_patches",
    "num_classes",
    "patch_grid",
    "w_embed",
    "pos_bias",
    "blocks",
    "head_weights",
    "eps_final",
    "final_width",
)


def _validate_state(state, fmt: str) -> dict:
    """Reject truncated/corrupted snapshot state before restoring from it."""
    if not isinstance(state, dict):
        raise ValueError(
            f"corrupted {fmt} snapshot: state must be a dict, "
            f"got {type(state).__name__}"
        )
    missing = [key for key in _REQUIRED_STATE_KEYS if key not in state]
    if missing:
        raise ValueError(
            f"truncated {fmt} snapshot: state is missing {missing}"
        )
    return state


def _validate_max_batch(value) -> int:
    """Validate a micro-batch capacity before any buffer allocation happens.

    Shared by :class:`InferenceSession`, :class:`repro.infer.CompiledModule`
    and the serving layer so the error reads the same everywhere."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(
            f"max_batch must be a positive integer, got {value!r} "
            f"({type(value).__name__})"
        )
    if value < 1:
        raise ValueError(
            f"max_batch must be >= 1, got {value}; micro-batches hold at "
            "least one sample"
        )
    return int(value)


def _collect_dense_chain(sequential: nn.Sequential, what: str) -> list[nn.Dense]:
    """Extract the Dense layers of a Dense/GELU/Dropout sequential chain."""
    denses: list[nn.Dense] = []
    for layer in sequential.layers:
        if isinstance(layer, nn.Dense):
            denses.append(layer)
        elif not isinstance(layer, (nn.GELU, nn.Dropout, nn.Identity)):
            raise TypeError(
                f"cannot compile {what}: unsupported layer {layer!r} "
                "(expected Dense/GELU/Dropout)"
            )
    return denses


class _BlockProgram:
    """Compiled weights + scratch buffers of one transformer encoder block."""

    def __init__(self, block, max_batch: int):
        dim = block.dim
        heads = block.attention.heads
        head_dim = block.attention.head_dim

        attn = block.attention
        # Pack Q/K/V into one (D, 3D) matmul and fold the pre-norm affine in.
        packed_w = np.concatenate(
            [attn.query.weight.data, attn.key.weight.data, attn.value.weight.data],
            axis=1,
        )
        packed_b = np.concatenate(
            [attn.query.bias.data, attn.key.bias.data, attn.value.bias.data]
        )
        self.w_qkv, self.b_qkv = fold_norm_into_dense(
            block.norm_attention.gamma.data,
            block.norm_attention.beta.data,
            packed_w,
            packed_b,
        )
        self.w_out = contiguous_f32(attn.out.weight.data)
        self.b_out = contiguous_f32(attn.out.bias.data)
        self.scale = np.float32(attn.scale)
        self.eps_attn = block.norm_attention.eps
        self.eps_mlp = block.norm_mlp.eps

        mlp_denses = _collect_dense_chain(block.mlp, "encoder MLP")
        self.mlp_weights: list[tuple[np.ndarray, np.ndarray]] = []
        for index, dense in enumerate(mlp_denses):
            if index == 0:
                w, b = fold_norm_into_dense(
                    block.norm_mlp.gamma.data,
                    block.norm_mlp.beta.data,
                    dense.weight.data,
                    dense.bias.data if dense.bias is not None else None,
                )
            else:
                w = contiguous_f32(dense.weight.data)
                b = contiguous_f32(dense.bias.data) if dense.bias is not None else None
            self.mlp_weights.append((w, b))

        self.dim = dim
        self.heads = heads
        self.head_dim = head_dim
        self.mlp_widths = [w.shape[1] for w, _b in self.mlp_weights]
        self.out_dim = block.out_dim
        self._buffers_for = None
        self._max_batch = max_batch

    #: Lazily (re)allocated scratch attributes — plus the kernel bindings
    #: rebuilt by :meth:`_bind_kernel` — excluded from pickles so a
    #: snapshot ships only the compiled weights (the session-level
    #: ``kernel`` / ``kernel_plans`` entries are the single wire copy).
    _SCRATCH = ("normed", "qkv", "scores", "context", "merged",
                "mlp_bufs", "gelu_tmp", "block_out", "proj", "mlp_out",
                "_kernel", "_plans", "_w_qkv_exec", "_w_out_exec", "_mlp_exec")

    def __getstate__(self) -> dict:
        state = {k: v for k, v in self.__dict__.items() if k not in self._SCRATCH}
        state["_buffers_for"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._buffers_for = None

    def _bind_kernel(self, kernel: str, plans: dict) -> None:
        """Bind the session's kernel choice to this block: under the
        blocked kernel, float weights with a tuned blocked plan are
        pre-packed into :class:`PackedWeight` panels once; quantized
        weights and the naive kernel pass the raw objects through."""
        self._kernel = kernel
        self._plans = plans

        def wrap(weight, site: str):
            plan = plans.get(site)
            if (kernel != "blocked" or plan is None or not plan.blocked
                    or not isinstance(weight, np.ndarray)):
                return weight
            return PackedWeight(weight, plan)

        self._w_qkv_exec = wrap(self.w_qkv, "qkv")
        self._w_out_exec = wrap(self.w_out, "attn_out")
        self._mlp_exec = [wrap(w, f"mlp{index}")
                          for index, (w, _bias) in enumerate(self.mlp_weights)]
        self._buffers_for = None  # blocked scratch differs; force realloc

    def _allocate(self, seq: int) -> None:
        """Scratch buffers for ``(max_batch, seq)`` inputs, reused per call."""
        B, D, h, hd = self._max_batch, self.dim, self.heads, self.head_dim
        f32 = np.float32
        self.normed = np.empty((B, seq, D), dtype=f32)
        # qkv viewed as (B, N, 3, h, hd) so q/k/v split into head layout
        # without copies; the packed weight column order matches.
        self.qkv = np.empty((B, seq, 3 * D), dtype=f32)
        self.scores = np.empty((B, h, seq, seq), dtype=f32)
        self.context = np.empty((B, h, seq, hd), dtype=f32)
        self.merged = np.empty((B, seq, D), dtype=f32)
        self.mlp_bufs = [np.empty((B, seq, u), dtype=f32) for u in self.mlp_widths[:-1]]
        self.gelu_tmp = np.empty((B, seq, max(self.mlp_widths)), dtype=f32)
        self.block_out = np.empty((B, seq, self.out_dim), dtype=f32)
        if getattr(self, "_kernel", "naive") == "blocked":
            # Contiguous targets for the two strided-output sites, so the
            # folded GEMMs never pay matmul's internal strided buffering.
            self.proj = np.empty((B, seq, D), dtype=f32)
            self.mlp_out = np.empty((B, seq, self.out_dim - D), dtype=f32)
        self._buffers_for = seq

    def run(self, tokens: np.ndarray) -> np.ndarray:
        """One fused encoder block over ``(b, N, D)`` tokens; returns a
        ``(b, N, out_dim)`` view into this block's output buffer."""
        b, seq, _dim = tokens.shape
        if self._buffers_for != seq:
            self._allocate(seq)
        if getattr(self, "_kernel", "naive") == "blocked":
            return self._run_blocked(tokens, b, seq)
        D, h, hd = self.dim, self.heads, self.head_dim

        normed = self.normed[:b]
        qkv = self.qkv[:b]
        scores = self.scores[:b]
        context = self.context[:b]
        merged = self.merged[:b]
        out = self.block_out[:b]
        attended = out[..., :D]

        # --- attention sub-block (pre-norm folded into the packed matmul)
        layer_norm_(tokens, self.eps_attn, out=normed)
        dense_(normed, self.w_qkv, self.b_qkv, out=qkv)
        split = qkv.reshape(b, seq, 3, h, hd)
        q = split[:, :, 0].transpose(0, 2, 1, 3)  # (b, h, N, hd) views
        k = split[:, :, 1].transpose(0, 2, 1, 3)
        v = split[:, :, 2].transpose(0, 2, 1, 3)
        np.matmul(q, k.transpose(0, 1, 3, 2), out=scores)
        scores *= self.scale
        softmax_(scores)
        np.matmul(scores, v, out=context)
        np.copyto(merged.reshape(b, seq, h, hd), context.transpose(0, 2, 1, 3))
        dense_(merged, self.w_out, self.b_out, out=attended)
        attended += tokens  # residual

        # --- MLP sub-block (pre-norm folded into the first dense)
        layer_norm_(attended, self.eps_mlp, out=normed)
        x = normed
        for index, (w, bias) in enumerate(self.mlp_weights):
            last = index == len(self.mlp_weights) - 1
            target = out[..., D:] if last else self.mlp_bufs[index][:b]
            dense_(x, w, bias, out=target)
            gelu_(target, self.gelu_tmp[:b, :, : target.shape[-1]])
            x = target
        # `out` already holds [attended | transformed] — the concatenation
        # was written in place, no np.concatenate needed.
        return out

    def _run_blocked(self, tokens: np.ndarray, b: int, seq: int) -> np.ndarray:
        """Blocked-kernel body of :meth:`run`.

        Token panels fold to 2-D so every dense site is one (tuned) GEMM
        instead of one BLAS call per sample, and the two strided-output
        sites (attention out-projection, last MLP dense) write through
        contiguous scratch (``proj`` / ``mlp_out``) instead of matmul's
        internal strided-out buffering.  The residual add and the final
        copy keep the op-for-op float semantics of the naive path."""
        D, h, hd = self.dim, self.heads, self.head_dim
        rows = b * seq
        normed = self.normed[:b]
        qkv = self.qkv[:b]
        scores = self.scores[:b]
        context = self.context[:b]
        merged = self.merged[:b]
        proj = self.proj[:b]
        out = self.block_out[:b]
        attended = out[..., :D]

        # --- attention sub-block (pre-norm folded into the packed matmul)
        layer_norm_(tokens, self.eps_attn, out=normed)
        dense_(normed.reshape(rows, D), self._w_qkv_exec, self.b_qkv,
               out=qkv.reshape(rows, 3 * D))
        split = qkv.reshape(b, seq, 3, h, hd)
        q = split[:, :, 0].transpose(0, 2, 1, 3)  # (b, h, N, hd) views
        k = split[:, :, 1].transpose(0, 2, 1, 3)
        v = split[:, :, 2].transpose(0, 2, 1, 3)
        np.matmul(q, k.transpose(0, 1, 3, 2), out=scores)
        scores *= self.scale
        softmax_(scores)
        np.matmul(scores, v, out=context)
        np.copyto(merged.reshape(b, seq, h, hd), context.transpose(0, 2, 1, 3))
        dense_(merged.reshape(rows, D), self._w_out_exec, self.b_out,
               out=proj.reshape(rows, D))
        np.add(proj, tokens, out=attended)  # residual

        # --- MLP sub-block (pre-norm folded into the first dense)
        layer_norm_(attended, self.eps_mlp, out=normed)
        x2d = normed.reshape(rows, D)
        for index, (_w, bias) in enumerate(self.mlp_weights):
            last = index == len(self.mlp_weights) - 1
            target = self.mlp_out[:b] if last else self.mlp_bufs[index][:b]
            width = target.shape[-1]
            dense_(x2d, self._mlp_exec[index], bias,
                   out=target.reshape(rows, width))
            gelu_(target, self.gelu_tmp[:b, :, :width])
            x2d = target.reshape(rows, width)
        np.copyto(out[..., D:], self.mlp_out[:b])
        return out


class InferenceSession:
    """Compiled, tape-free forward engine for a trained ``VitalModel``.

    Parameters
    ----------
    model:
        The trained model; its weights are copied into flat float32 arrays
        at construction (later training steps do not affect the session).
    max_batch:
        Micro-batch capacity of the scratch buffers.  ``predict`` serves at
        most this many samples per call; ``predict_many`` chunks any
        workload through it.
    kernel:
        ``"blocked"`` (folded 2-D GEMMs through autotuned
        :class:`repro.infer.kernels.GemmPlan` layouts, weights pre-packed
        once at compile), ``"naive"`` (the pre-kernel-layer per-sample
        BLAS path, kept for A/B and old snapshots) or ``"auto"`` (honor
        the ``REPRO_KERNEL`` env override, default blocked).  Tuned plans
        ship in snapshots, so restored serving workers never re-tune.
    """

    def __init__(self, model: VitalModel, max_batch: int = 32,
                 kernel: str = "auto"):
        if not isinstance(model, VitalModel):
            raise TypeError(
                f"InferenceSession compiles VitalModel, got {type(model).__name__}; "
                "use repro.infer.compile_module for sequential baseline models"
            )
        self.kernel = resolve_kernel(kernel)
        self.max_batch = _validate_max_batch(max_batch)
        self.image_size = model.image_size
        self.channels = model.channels
        self.patch_size = model.patch_size
        self.num_patches = model.num_patches
        self.num_classes = model.num_classes

        # Same per-geometry cached gather grid the model itself uses.
        self.patch_grid = patch_index_grid(self.image_size, self.patch_size, self.channels)
        patch_dim = self.patch_grid.shape[1]

        # --- embedding: projection bias + position embedding fused into one add
        self.w_embed = contiguous_f32(model.embedding.projection.weight.data)
        pos = model.embedding.position.data.astype(np.float64)
        bias = model.embedding.projection.bias.data.astype(np.float64)
        self.pos_bias = contiguous_f32(pos + bias)  # (N, D)

        self.blocks = [_BlockProgram(block, self.max_batch) for block in model.encoder]

        # --- head: final norm folded into the first head dense
        head_denses = _collect_dense_chain(model.head, "head MLP")
        self.head_weights: list[tuple[np.ndarray, np.ndarray]] = []
        for index, dense in enumerate(head_denses):
            if index == 0:
                w, b = fold_norm_into_dense(
                    model.final_norm.gamma.data,
                    model.final_norm.beta.data,
                    dense.weight.data,
                    dense.bias.data if dense.bias is not None else None,
                )
            else:
                w = contiguous_f32(dense.weight.data)
                b = contiguous_f32(dense.bias.data) if dense.bias is not None else None
            self.head_weights.append((w, b))
        self.eps_final = model.final_norm.eps
        self.final_width = model.final_norm.features

        self.kernel_plans = self._tune_plans() if self.kernel == "blocked" else {}
        self._allocate_scratch()

    def _tune_plans(self) -> dict:
        """One-shot autotune of every distinct GEMM site of this geometry.

        Sites are tuned on the single-sample folded shape
        ``(num_patches, K) @ (K, N)`` — per-request latency is the
        product metric, and row blocking degrades gracefully to the
        monolithic call at small batches anyway.  All encoder blocks
        share one geometry, so block sites are tuned once; the plans are
        memoized process-wide per shape and shipped in snapshots, so
        restored serving workers never re-tune.
        """
        rows = self.num_patches
        patch_dim = self.patch_grid.shape[1]
        plans = {"embed": autotune_gemm(rows, patch_dim, self.w_embed.shape[1])}
        if self.blocks:
            block = self.blocks[0]
            plans["qkv"] = autotune_gemm(rows, block.w_qkv.shape[0],
                                         block.w_qkv.shape[1])
            plans["attn_out"] = autotune_gemm(rows, block.w_out.shape[0],
                                              block.w_out.shape[1])
            for index, (w, _bias) in enumerate(block.mlp_weights):
                plans[f"mlp{index}"] = autotune_gemm(rows, w.shape[0], w.shape[1])
        return plans

    def gemm_sites(self) -> list[dict]:
        """Shape identity of every GEMM site this engine runs, reusing the
        kernel layer's plan identities (:mod:`repro.infer.kernels`).

        Each entry reports the site name, the ``(m, k, n)`` folded
        single-sample shape (``m`` is ``None`` for head sites, whose row
        count is the request batch size), the weight storage (``float32``
        or ``int8``), and the autotuned :class:`GemmPlan` when the
        blocked kernel tuned one.  This is the vocabulary profiling
        output and the ``obs top`` CLI use to talk about compute."""

        def entry(site, m, weight):
            plan = self.kernel_plans.get(site)
            k, n = int(weight.shape[0]), int(weight.shape[1])
            return {
                "site": site,
                "m": m,
                "k": k,
                "n": n,
                "weight": "float32" if isinstance(weight, np.ndarray)
                          else "int8",
                "plan": plan.as_dict() if plan is not None else None,
            }

        rows = self.num_patches
        sites = [entry("embed", rows, self.w_embed)]
        if self.blocks:
            block = self.blocks[0]
            sites.append(entry("qkv", rows, block.w_qkv))
            sites.append(entry("attn_out", rows, block.w_out))
            for index, (w, _bias) in enumerate(block.mlp_weights):
                sites.append(entry(f"mlp{index}", rows, w))
        for index, (w, _bias) in enumerate(self.head_weights):
            sites.append(entry(f"head{index}", None, w))
        return sites

    def _allocate_scratch(self) -> None:
        """(Re)allocate the top-level scratch buffers shared across calls
        and (re)bind the kernel layer to the compiled weights."""
        # Sessions restored from pre-kernel-layer snapshots have no kernel
        # entry: they run the naive path, preserving their old numerics.
        self.kernel = getattr(self, "kernel", "naive")
        self.kernel_plans = getattr(self, "kernel_plans", None) or {}
        embed_plan = self.kernel_plans.get("embed")
        if (self.kernel == "blocked" and embed_plan is not None
                and embed_plan.blocked and isinstance(self.w_embed, np.ndarray)):
            self._w_embed_exec = PackedWeight(self.w_embed, embed_plan)
        else:
            self._w_embed_exec = self.w_embed
        for block in self.blocks:
            block._bind_kernel(self.kernel, self.kernel_plans)

        B, N = self.max_batch, self.num_patches
        f32 = np.float32
        patch_dim = self.patch_grid.shape[1]
        self._patches = np.empty((B, N, patch_dim), dtype=f32)
        self._tokens = np.empty((B, N, self.w_embed.shape[1]), dtype=f32)
        self._final_normed = np.empty((B, N, self.final_width), dtype=f32)
        self._pooled = np.empty((B, self.final_width), dtype=f32)
        head_widths = [w.shape[1] for w, _b in self.head_weights]
        self._head_bufs = [np.empty((B, u), dtype=f32) for u in head_widths]
        self._head_tmp = np.empty((B, max(head_widths)), dtype=f32)
        # Opt-in per-phase profiler (repro.obs.profile.SessionProfiler);
        # scratch-excluded, so restored sessions always start unprofiled.
        self._profiler = getattr(self, "_profiler", None)

    # -- snapshot / restore -------------------------------------------
    #: Scratch attributes excluded from pickles; rebuilt on restore.
    _SCRATCH = ("_patches", "_tokens", "_final_normed", "_pooled",
                "_head_bufs", "_head_tmp", "_w_embed_exec", "_profiler")

    def __getstate__(self) -> dict:
        return {k: v for k, v in self.__dict__.items() if k not in self._SCRATCH}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._allocate_scratch()

    def snapshot(self) -> dict:
        """Compact, picklable snapshot of the compiled engine.

        The snapshot holds only the flat float32 weight arrays, the gather
        grid and the geometry — no scratch buffers, no model, no tape — so
        it is cheap to ship over a ``multiprocessing`` pipe/queue to
        serving workers.  The arrays are shared, not copied (zero-copy
        handoff under ``fork``; pickled once under ``spawn``).
        """
        return {"format": SNAPSHOT_FORMAT, "state": self.__getstate__()}

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "InferenceSession":
        """Rebuild a session from :meth:`snapshot` without a ``VitalModel``."""
        if not isinstance(snapshot, dict) or snapshot.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"not an InferenceSession snapshot (expected format "
                f"{SNAPSHOT_FORMAT!r}, got {snapshot.get('format') if isinstance(snapshot, dict) else snapshot!r})"
            )
        session = cls.__new__(cls)
        session.__setstate__(_validate_state(snapshot.get("state"), SNAPSHOT_FORMAT))
        return session

    # ------------------------------------------------------------------
    @classmethod
    def from_state_dict(
        cls,
        config,
        image_size: int,
        channels: int,
        num_classes: int,
        state: dict[str, np.ndarray],
        max_batch: int = 32,
    ) -> "InferenceSession":
        """Build a session straight from saved weights (``nn.load_arrays``)."""
        model = VitalModel(config, image_size=image_size, channels=channels,
                           num_classes=num_classes)
        model.load_state_dict(state)
        return cls(model, max_batch=max_batch)

    # ------------------------------------------------------------------
    def _coerce(self, images) -> np.ndarray:
        x = np.asarray(images, dtype=np.float32)
        if x.ndim == 3:
            x = x[None]
        if x.ndim != 4 or x.shape[1] != self.image_size or x.shape[2] != self.image_size \
                or x.shape[3] != self.channels:
            raise ValueError(
                f"expected (batch, {self.image_size}, {self.image_size}, "
                f"{self.channels}) images, got {np.shape(images)}"
            )
        return x

    def predict(self, images) -> np.ndarray:
        """Logits for one micro-batch of ``(b, S, S, C)`` images, b ≤ max_batch."""
        x = self._coerce(images)
        b = len(x)
        if b > self.max_batch:
            raise ValueError(
                f"batch {b} exceeds max_batch {self.max_batch}; use predict_many"
            )
        # Profiling hook: one `is not None` check per phase when disabled
        # (the default — `_profiler` lives in scratch and restores to None).
        prof = self._profiler
        if prof is not None:
            t0 = time.perf_counter()
        flat = x.reshape(b, -1)
        patches = self._patches[:b]
        np.take(flat, self.patch_grid, axis=1, out=patches)
        if prof is not None:
            t0 = prof.lap("patch_gather", t0)

        tokens = self._tokens[:b]
        if self.kernel == "blocked":
            rows = b * self.num_patches
            dense_(patches.reshape(rows, patches.shape[-1]), self._w_embed_exec,
                   None, out=tokens.reshape(rows, tokens.shape[-1]))
        else:
            dense_(patches, self.w_embed, None, out=tokens)
        tokens += self.pos_bias
        if prof is not None:
            t0 = prof.lap("embed", t0)

        out = tokens
        if prof is not None:
            for index, block in enumerate(self.blocks):
                out = block.run(out)
                t0 = prof.lap(f"block{index}", t0)
        else:
            for block in self.blocks:
                out = block.run(out)

        normed = self._final_normed[:b]
        layer_norm_(out, self.eps_final, out=normed)
        pooled = self._pooled[:b]
        np.mean(normed, axis=1, out=pooled)
        if prof is not None:
            t0 = prof.lap("final_norm_pool", t0)

        x2d = pooled
        for index, (w, bias) in enumerate(self.head_weights):
            target = self._head_bufs[index][:b]
            dense_(x2d, w, bias, out=target)
            if index < len(self.head_weights) - 1:
                gelu_(target, self._head_tmp[:b, : target.shape[-1]])
            x2d = target
        if prof is not None:
            prof.lap("head", t0)
        return x2d.copy()

    def predict_many(self, images, max_batch: int | None = None) -> np.ndarray:
        """Logits for an arbitrary workload, chunked through the scratch
        buffers ``max_batch`` samples at a time."""
        if max_batch is not None:
            max_batch = _validate_max_batch(max_batch)
        x = self._coerce(images)
        chunk = min(self.max_batch, max_batch or self.max_batch)
        out = np.empty((len(x), self.num_classes), dtype=np.float32)
        for begin in range(0, len(x), chunk):
            out[begin : begin + chunk] = self.predict(x[begin : begin + chunk])
        return out

    def predict_labels(self, images) -> np.ndarray:
        """Argmax reference-point indices for an arbitrary workload."""
        return self.predict_many(images).argmax(axis=1)

    def __call__(self, images) -> np.ndarray:
        return self.predict_many(images)

    def __repr__(self) -> str:
        return (
            f"InferenceSession(image={self.image_size}, patches={self.num_patches}, "
            f"blocks={len(self.blocks)}, classes={self.num_classes}, "
            f"max_batch={self.max_batch}, kernel={self.kernel})"
        )


def restore_session(snapshot: dict) -> "InferenceSession":
    """Restore any engine snapshot — float32 or quantized — by format tag.

    Serving workers use this single entry point so a
    :class:`LocalizationServer` can be seeded with either a plain
    :meth:`InferenceSession.snapshot` or a
    :meth:`repro.quant.QuantizedSession.snapshot` (int8 codes, ~4x fewer
    bytes over the ``multiprocessing`` queues).
    """
    fmt = snapshot.get("format") if isinstance(snapshot, dict) else None
    if fmt == SNAPSHOT_FORMAT:
        return InferenceSession.from_snapshot(snapshot)
    if isinstance(fmt, str) and fmt.startswith("repro.quant.session/"):
        from repro.quant.session import QuantizedSession

        return QuantizedSession.from_snapshot(snapshot)
    raise ValueError(
        f"not a restorable session snapshot (format {fmt!r}; expected "
        f"{SNAPSHOT_FORMAT!r} or a repro.quant.session/* snapshot)"
    )


def snapshot_info(snapshot) -> dict:
    """Cheap metadata peek at any restorable engine snapshot.

    Returns geometry + format facts (image size, channels, classes,
    micro-batch capacity, block count; quantization scheme/mode/bits for
    int8 snapshots) without rebuilding a session — the
    :mod:`repro.fleet` registry records this in every version manifest,
    and the CLI uses it to validate ``--snapshot`` files before serving.
    Raises ``ValueError`` for unknown formats or truncated state, the
    same contract as :func:`restore_session`.
    """
    fmt = snapshot.get("format") if isinstance(snapshot, dict) else None
    quantized = isinstance(fmt, str) and fmt.startswith("repro.quant.session/")
    if fmt != SNAPSHOT_FORMAT and not quantized:
        raise ValueError(
            f"not a restorable session snapshot (format {fmt!r}; expected "
            f"{SNAPSHOT_FORMAT!r} or a repro.quant.session/* snapshot)"
        )
    state = _validate_state(snapshot.get("state"), fmt)
    info = {
        "format": fmt,
        "quantized": quantized,
        "image_size": int(state["image_size"]),
        "channels": int(state["channels"]),
        "num_classes": int(state["num_classes"]),
        "max_batch": int(state["max_batch"]),
        "blocks": len(state["blocks"]),
        # Pre-kernel-layer snapshots carry no kernel entry and restore
        # onto the naive path.
        "kernel": state.get("kernel", "naive"),
    }
    if quantized:
        info.update(
            scheme=snapshot.get("scheme"),
            mode=snapshot.get("mode"),
            bits=snapshot.get("bits"),
            # Which matmul engine the int8-resident path runs; None for
            # dequantize-on-load sessions (plain float kernels).
            matmul=(snapshot.get("matmul", "dequant_tile")
                    if snapshot.get("mode") == "int8" else None),
        )
    return info
