"""Inference throughput benchmark: fused engine vs. the autograd tape.

Measures three serving lanes on the same model and inputs:

* ``tape``    — ``model(Tensor(x))`` with gradients recording, i.e. what a
  naive deployment of the training code pays per prediction;
* ``no_grad`` — the module forward inside ``no_grad()`` (the substrate's
  closure-free fast path, still allocating per op);
* ``fused``   — :class:`repro.infer.InferenceSession`.

Results are written to ``BENCH_inference.json`` so every future PR has a
recorded trajectory to regress against.  Schema (``repro.infer.bench.v3``)::

    {
      "schema": "repro.infer.bench.v3",
      "config": {model geometry, iteration counts, seed, kernel, threads},
      "single_sample": {
        "tape"|"no_grad"|"fused": {"p50_ms", "p99_ms", "mean_ms"},
        "speedup_fused_vs_tape": float,   # acceptance floor: >= 3.0
        "speedup_fused_vs_no_grad": float
      },
      "batch": {"batch_size", per-lane samples_per_s, "speedup_fused_vs_tape"},
      "equivalence": {"max_abs_diff", "argmax_match"},
      "quantization": {...},  # v2: repro.quant trade-off record
                              # (benchmarks/bench_quantization.py)
      "kernels": {...}        # v3: kernel-layer micro-benchmark
                              # (see kernel_microbench)
    }

v2 adds the optional ``quantization`` section over v1; v3 adds the
``kernels`` section (per-shape GEMM micro-bench, fused blocked-vs-naive
A/B, int8-resident throughput vs the PR-3 dequant-tile baseline, and the
bit-exactness flags).  The regression gate reads the shared keys of
whatever sections a record carries, so ``--check`` accepts all three
versions as baselines.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.infer.kernels import (
    autotune_gemm,
    gemm_into,
    int8_accumulate_reference,
    pack_panels,
    plan_is_exact,
    quantize_rows_,
    tune_quant_tile,
)
from repro.infer.ops import QuantizedLinear
from repro.infer.session import InferenceSession
from repro.tensor import Tensor, no_grad
from repro.vit.config import VitalConfig
from repro.vit.model import VitalModel

DEFAULT_OUTPUT = "BENCH_inference.json"

#: Current record schema; ``load_baseline`` also accepts the listed
#: predecessors (v2 added ``quantization``, v3 adds ``kernels``).
SCHEMA = "repro.infer.bench.v3"
COMPATIBLE_SCHEMAS = (
    "repro.infer.bench.v1",
    "repro.infer.bench.v2",
    "repro.infer.bench.v3",
)

#: Minimum speedup of the tuned int8-resident GEMM stack over the PR-3
#: dequant-tile baseline configuration, gated by ``infer-bench --check``
#: on full (non-quick) records.
INT8_SPEEDUP_FLOOR = 1.5

#: Environment knobs that size the BLAS/OpenMP thread pool; recorded in
#: the bench ``config`` block so a record states the thread configuration
#: it was measured under.  Never part of the comparability gate — thread
#: counts change timings, not what the benchmark measures.
_THREAD_ENV_KEYS = ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
                    "MKL_NUM_THREADS")


def thread_config() -> dict:
    """The BLAS/OpenMP thread-pinning environment as currently set
    (``None`` for unset knobs), for the bench ``config`` block."""
    return {key: os.environ.get(key) for key in _THREAD_ENV_KEYS}


def _percentiles(samples_ms: list[float]) -> dict[str, float]:
    arr = np.asarray(samples_ms)
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p99_ms": float(np.percentile(arr, 99)),
        "mean_ms": float(arr.mean()),
    }


def _time_repeated(fn, iterations: int, warmup: int = 3) -> list[float]:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(iterations):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return samples


def _percentile_pair(samples_ms: list[float]) -> tuple[float, float]:
    arr = np.asarray(samples_ms)
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 95))


def _time_us(fn, iterations: int, warmup: int = 5) -> float:
    """Median per-call microseconds of ``fn`` over ``iterations`` calls."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(iterations):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e6)
    return float(np.median(samples))


def _time_lanes_us(lanes: dict, iterations: int, rounds: int = 3) -> dict:
    """Per-lane median microseconds, lanes *interleaved* call-by-call and
    the per-round median minimized across ``rounds``.

    Sequential per-lane loops let clock drift (frequency scaling, a noisy
    neighbor) land entirely on one lane and fake a 1.3x either way on a
    one-core host; interleaving gives every lane the same slice of every
    host condition, and min-of-rounds drops rounds that were globally
    disturbed.  Measured A/B ratios stabilize from ±20% to a few percent.
    """
    best = {name: float("inf") for name in lanes}
    for _ in range(rounds):
        samples: dict[str, list[float]] = {name: [] for name in lanes}
        for fn in lanes.values():
            fn()
        for _ in range(iterations):
            for name, fn in lanes.items():
                start = time.perf_counter()
                fn()
                samples[name].append((time.perf_counter() - start) * 1e6)
        for name in lanes:
            best[name] = min(best[name], float(np.median(samples[name])))
    return best


def _pr3_dequant_reference(codes: np.ndarray, scales: np.ndarray,
                           tile: int = 64):
    """The PR-3 int8-resident matmul, frozen for A/B benchmarking.

    Decode-*multiplies* ``tile`` output columns into a float32 scratch
    per call and matmuls the batched 3-D activations per tile — exactly
    the algorithm :class:`QuantizedLinear` shipped before the kernel
    layer (which now casts the panel and scales the output block
    instead).  Kept verbatim here so the recorded ``int8_resident``
    baseline measures the real predecessor, not a degraded stand-in.
    """
    n_in, n_out = codes.shape
    width = min(tile, n_out)
    scratch = np.empty((n_in, width), dtype=np.float32)
    per_channel = scales.ndim == 1

    def matmul_into(x: np.ndarray, out: np.ndarray) -> np.ndarray:
        for begin in range(0, n_out, width):
            end = min(begin + width, n_out)
            w = scratch[:, : end - begin]
            scale = scales[begin:end] if per_channel else scales
            np.multiply(codes[:, begin:end], scale, out=w)
            np.matmul(x, w, out=out[..., begin:end])
        return out

    return matmul_into


def _quantize_weight(weight: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-channel int8 codes + scales for a ``(K, N)`` float32 weight."""
    scales = np.abs(weight).max(axis=0).astype(np.float32) / np.float32(127.0)
    scales[scales == 0] = np.float32(1.0)
    codes = np.clip(np.rint(weight / scales), -127, 127).astype(np.int8)
    return codes, scales


def _session_gemm_sites(session: InferenceSession) -> list[tuple[str, int, int, int]]:
    """``(site, m, k, n)`` for every distinct encoder GEMM of a session,
    at the single-sample folded shape (``m = num_patches``) — the same
    shapes :meth:`InferenceSession._tune_plans` tunes."""
    rows = session.num_patches
    patch_dim = session.patch_grid.shape[1]
    sites = [("embed", rows, patch_dim, session.w_embed.shape[1])]
    if session.blocks:
        block = session.blocks[0]
        sites.append(("qkv", rows, block.w_qkv.shape[0], block.w_qkv.shape[1]))
        sites.append(("attn_out", rows, block.w_out.shape[0], block.w_out.shape[1]))
        for index, (w, _bias) in enumerate(block.mlp_weights):
            sites.append((f"mlp{index}", rows, w.shape[0], w.shape[1]))
    return sites


#: Fixed reference shapes for the float32 GEMM micro-bench, beyond the
#: session's own sites: the ``predict_many`` chunk fold (max_batch=32 x
#: 36 patches) and a square shape large enough for row/column blocking
#: to engage on small caches.
_GEMM_REFERENCE_SHAPES = (("chunk_qkv", 1152, 60, 180), ("large", 512, 256, 256))

#: PR-3 fixed decode-tile width — the int8-resident baseline configuration.
_BASELINE_QUANT_TILE = 64


def kernel_microbench(session: InferenceSession, *, iters: int = 300,
                      seed: int = 0, quick: bool = False) -> dict:
    """Kernel-layer micro-benchmark → the ``kernels`` section (schema v3).

    Three experiments over the session's own GEMM sites:

    * ``gemm`` — float32 ``gemm_into`` under the autotuned plan vs the
      monolithic ``np.matmul`` call, per shape (plus fixed larger
      reference shapes where blocking engages).  Informational: admitted
      plans are bit-exact, so this only shows where blocking pays.
    * ``int8_resident`` — the quantized GEMM stack (every encoder site
      served int8-resident) in three configurations: the PR-3 baseline
      (the frozen :func:`_pr3_dequant_reference` — 64-column
      decode-multiply tile loop over batched 3-D activations, exactly
      the predecessor's algorithm), the tuned dequant-tile engine
      (cache-budgeted panel, cast + scale-after-matmul, activations
      folded 2-D — how the blocked kernel executes), and the
      int8-accumulate engine.  Lanes are timed interleaved with
      min-of-rounds medians (see :func:`_time_lanes_us`).  The headline
      ``speedup`` is measured on the *hot site* — the engine's largest
      quantized GEMM (packed QKV), where the serving cycles concentrate
      — as baseline time over the best int8-resident engine; the
      whole-stack ratio is recorded alongside as ``stack_speedup``
      (small ``N <= tile`` sites have no panel to widen, so the stack
      ratio is structurally lower).  The ``--check`` gate requires
      ``speedup`` >= :data:`INT8_SPEEDUP_FLOOR` on full records.
    * ``exactness`` — the autotuner's bit-exactness contract re-verified
      on every admitted plan, and the int8-accumulate engine checked
      bit-for-bit against the integer reference matmul.
    """
    rounds = 2 if quick else 3
    if quick:
        iters = min(iters, 30)
    rng = np.random.default_rng(seed)
    sites = _session_gemm_sites(session)
    plans = {site: autotune_gemm(m, k, n) for site, m, k, n in sites}

    # --- float32 GEMM micro-bench: tuned plan vs monolithic, per shape
    gemm_rows = []
    blocked_exact = True
    for site, m, k, n in sites + [shape for shape in _GEMM_REFERENCE_SHAPES]:
        # session sites report the plan sessions actually bind (the
        # 2-iteration compile-time tuning); the fixed reference shapes
        # afford a more careful uncached tuning pass
        plan = plans.get(site) or autotune_gemm(m, k, n, iters=8, cache=False)
        x = rng.standard_normal((m, k)).astype(np.float32)
        w = rng.standard_normal((k, n)).astype(np.float32)
        out = np.empty((m, n), np.float32)
        panels = pack_panels(w, plan.nb) if plan.nb else None
        blocked_exact &= plan_is_exact(m, k, n, plan, panels, probe=(x, w))
        mono_us = _time_us(lambda: np.matmul(x, w, out=out), iters)
        plan_us = _time_us(lambda: gemm_into(x, w, out, plan, panels), iters)
        gemm_rows.append({
            "site": site, "m": m, "k": k, "n": n,
            "plan": plan.as_dict() if plan.blocked else "monolithic",
            "monolithic_us": mono_us,
            "blocked_us": plan_us,
            "speedup": mono_us / plan_us if plan_us else 1.0,
        })

    # --- int8-resident stack: frozen PR-3 reference vs the kernel layer
    int8_rows = []
    totals = {"baseline": 0.0, "tuned": 0.0, "accumulate": 0.0}
    accumulate_exact = True
    hot = None
    for site, m, k, n in sites:
        w = rng.standard_normal((k, n)).astype(np.float32)
        codes, scales = _quantize_weight(w)
        tuned_tile = tune_quant_tile(k, n)
        tuned = QuantizedLinear(codes, scales, tile=tuned_tile)
        accumulate = QuantizedLinear(codes, scales, tile=tuned_tile,
                                     matmul_mode="int8_accumulate")
        baseline = _pr3_dequant_reference(codes, scales,
                                          tile=_BASELINE_QUANT_TILE)
        x2 = rng.standard_normal((m, k)).astype(np.float32)
        # the PR-3 engine sees batched 3-D activations; the blocked
        # kernel folds them to 2-D rows before the call
        x3 = np.ascontiguousarray(x2.reshape(1, m, k))
        o2 = np.empty((m, n), np.float32)
        o3 = np.empty((1, m, n), np.float32)
        timed = _time_lanes_us({
            "baseline": lambda: baseline(x3, o3),
            "tuned": lambda: tuned.matmul_into(x2, o2),
            "accumulate": lambda: accumulate.matmul_into(x2, o2),
        }, iters, rounds=rounds)
        row = {"site": site, "m": m, "k": k, "n": n,
               "baseline_tile": _BASELINE_QUANT_TILE, "tuned_tile": tuned_tile,
               **{f"{lane}_us": lane_us for lane, lane_us in timed.items()}}
        for lane, lane_us in timed.items():
            totals[lane] += lane_us
        int8_rows.append(row)
        if hot is None or k * n > hot["k"] * hot["n"]:
            hot = row
        # bit-exactness of the accumulate engine vs the integer reference
        q = np.empty((m, k), np.float32)
        row_scales = np.empty((m, 1), np.float32)
        quantize_rows_(x2, q, row_scales)
        reference = int8_accumulate_reference(q, codes, scales, row_scales)
        out = np.empty((m, n), np.float32)
        accumulate.matmul_into(x2, out)
        accumulate_exact &= bool(np.array_equal(reference, out))

    hot_best_us = min(hot["tuned_us"], hot["accumulate_us"])
    int8_resident = {
        "sites": int8_rows,
        "hot_site": hot["site"],
        "hot_shape": [hot["m"], hot["k"], hot["n"]],
        "hot_baseline_rows_per_s": hot["m"] * 1e6 / hot["baseline_us"],
        "hot_tuned_rows_per_s": hot["m"] * 1e6 / hot_best_us,
        "speedup": hot["baseline_us"] / hot_best_us,
        "stack_baseline_us": totals["baseline"],
        "stack_tuned_us": totals["tuned"],
        "stack_accumulate_us": totals["accumulate"],
        "stack_speedup": totals["baseline"] / totals["tuned"],
        "accumulate_vs_baseline": totals["baseline"] / totals["accumulate"],
        "baseline_config": "PR-3 reference: 64-column decode-multiply tile "
                           "loop, batched 3-D activations",
        "tuned_config": "blocked kernel: cache-budgeted panel, cast + "
                        "scale-after-matmul, activations folded 2-D",
    }

    return {
        "kernel": session.kernel,
        "plans": {site: plan.as_dict() if plan.blocked else "monolithic"
                  for site, plan in plans.items()},
        "gemm": gemm_rows,
        "int8_resident": int8_resident,
        "exactness": {
            "blocked_matches_monolithic": bool(blocked_exact),
            "accumulate_matches_reference": bool(accumulate_exact),
        },
        "iters": iters,
    }


def run_inference_benchmark(
    image_size: int = 24,
    num_classes: int = 32,
    max_batch: int = 32,
    single_iters: int = 100,
    batch_samples: int = 256,
    seed: int = 0,
    quick: bool = False,
    config: VitalConfig | None = None,
    kernel: str = "auto",
) -> dict:
    """Benchmark the three serving lanes; returns the result record.

    ``quick=True`` shrinks iteration counts so the benchmark runs in
    seconds (CI smoke mode) while keeping the full measurement shape.
    ``kernel`` selects the fused lane's GEMM layer (``auto`` resolves to
    the product default, honoring ``REPRO_KERNEL``); the ``kernels``
    section always measures both layers regardless.
    """
    if quick:
        single_iters = min(single_iters, 10)
        batch_samples = min(batch_samples, 2 * max_batch)

    config = config or VitalConfig.fast(image_size)
    rng = np.random.default_rng(seed)
    model = VitalModel(
        config,
        image_size=image_size,
        channels=3,
        num_classes=num_classes,
        rng=rng,
    )
    session = InferenceSession(model, max_batch=max_batch, kernel=kernel)

    single = rng.standard_normal((1, image_size, image_size, 3)).astype(np.float32)
    batch = rng.standard_normal((batch_samples, image_size, image_size, 3)).astype(np.float32)

    # --- numerical equivalence gate before timing anything
    model.eval()
    with no_grad():
        reference = model(Tensor(batch)).data
    fused = session.predict_many(batch)
    max_abs_diff = float(np.abs(reference - fused).max())
    argmax_match = bool((reference.argmax(axis=1) == fused.argmax(axis=1)).all())

    # --- single-sample latency.  The tape lane is an eval-mode forward with
    # gradients recording — closures, parent references and all — i.e. what
    # serving costs when the training code path is reused verbatim.
    model.eval()

    def tape_one():
        model(Tensor(single))

    def no_grad_one():
        with no_grad():
            model(Tensor(single))

    def fused_one():
        session.predict(single)

    lanes = {
        "tape": _time_repeated(tape_one, single_iters),
        "no_grad": _time_repeated(no_grad_one, single_iters),
        "fused": _time_repeated(fused_one, single_iters),
    }
    single_sample = {name: _percentiles(samples) for name, samples in lanes.items()}
    single_sample["speedup_fused_vs_tape"] = (
        single_sample["tape"]["p50_ms"] / single_sample["fused"]["p50_ms"]
    )
    single_sample["speedup_fused_vs_no_grad"] = (
        single_sample["no_grad"]["p50_ms"] / single_sample["fused"]["p50_ms"]
    )

    # --- batch throughput
    batch_iters = 3 if quick else 10

    def tape_batch():
        for begin in range(0, len(batch), max_batch):
            model(Tensor(batch[begin : begin + max_batch]))

    def fused_batch():
        session.predict_many(batch)

    tape_s = np.median(_time_repeated(tape_batch, batch_iters, warmup=1)) / 1e3
    fused_s = np.median(_time_repeated(fused_batch, batch_iters, warmup=1)) / 1e3

    # --- kernel layer: per-shape GEMM + int8 stack + fused A/B (v3)
    kernels = kernel_microbench(session, seed=seed, quick=quick)
    ab_sessions = {
        "naive": session if session.kernel == "naive"
        else InferenceSession(model, max_batch=max_batch, kernel="naive"),
        "blocked": session if session.kernel == "blocked"
        else InferenceSession(model, max_batch=max_batch, kernel="blocked"),
    }
    fused_ab = {}
    for lane, candidate in ab_sessions.items():
        p50, p95 = _percentile_pair(_time_repeated(
            lambda s=candidate: s.predict(single), single_iters
        ))
        fused_ab[f"{lane}_p50_ms"] = p50
        fused_ab[f"{lane}_p95_ms"] = p95
    fused_ab["speedup"] = fused_ab["naive_p50_ms"] / fused_ab["blocked_p50_ms"]
    kernels["fused"] = fused_ab

    result = {
        "schema": SCHEMA,
        "config": {
            "image_size": image_size,
            "patch_size": model.patch_size,
            "num_patches": model.num_patches,
            "projection_dim": config.projection_dim,
            "num_heads": config.num_heads,
            "encoder_blocks": config.encoder_blocks,
            "num_classes": num_classes,
            "parameters": model.num_parameters(),
            "max_batch": max_batch,
            "single_iters": single_iters,
            "batch_samples": batch_samples,
            "seed": seed,
            "quick": quick,
            "kernel": session.kernel,
            "threads": thread_config(),
        },
        "single_sample": single_sample,
        "batch": {
            "batch_size": max_batch,
            "tape_samples_per_s": float(len(batch) / tape_s),
            "fused_samples_per_s": float(len(batch) / fused_s),
            "speedup_fused_vs_tape": float(tape_s / fused_s),
        },
        "equivalence": {
            "max_abs_diff": max_abs_diff,
            "argmax_match": argmax_match,
        },
        "kernels": kernels,
    }
    return result


#: Default allowed relative worsening of fused p50 latency before
#: ``infer-bench --check`` fails (the ROADMAP perf-regression gate).
REGRESSION_THRESHOLD = 0.25


def load_baseline(path: str = DEFAULT_OUTPUT) -> dict:
    """Load a recorded inference baseline (schema v1, v2 or v3) from disk."""
    with open(path) as handle:
        baseline = json.load(handle)
    schema = baseline.get("schema")
    if schema not in COMPATIBLE_SCHEMAS:
        raise ValueError(f"{path} is not an inference baseline (schema {schema!r})")
    return baseline


#: Config keys that must match for a latency comparison to mean anything:
#: the model geometry, plus ``quick`` so a 10-iteration smoke run is never
#: judged against a full-length baseline (or vice versa).
_COMPARABLE_KEYS = ("image_size", "patch_size", "num_patches",
                    "projection_dim", "num_heads", "encoder_blocks",
                    "num_classes", "max_batch", "quick")


def _incomparability(result: dict, baseline: dict) -> str | None:
    """Why ``baseline`` cannot gate ``result``, or ``None`` if it can.

    Shared by :func:`check_regression` (which turns it into a failure)
    and :func:`format_check` (which turns it into the actionable hint),
    so the two can never disagree about which branch a run is on.
    """
    result_config = result.get("config", {})
    baseline_config = baseline.get("config", {})
    mismatched = [
        f"{key} {result_config.get(key)!r} != baseline {baseline_config.get(key)!r}"
        for key in _COMPARABLE_KEYS
        if result_config.get(key) != baseline_config.get(key)
    ]
    if mismatched:
        return "config not comparable to the baseline: " + "; ".join(mismatched)
    if "fused" not in baseline.get("single_sample", {}):
        return "baseline record has no fused single-sample lane to compare against"
    return None


def check_regression(
    result: dict,
    baseline: dict,
    threshold: float = REGRESSION_THRESHOLD,
) -> list[str]:
    """Compare a fresh benchmark run against the recorded baseline.

    Returns a list of human-readable failure strings — empty means the
    gate passes.  The gate is on the *fused* lane only (the served path):
    single-sample p50 latency may not worsen by more than ``threshold``
    (relative), and the numerical-equivalence invariants must still hold.
    The tape/no_grad lanes are informational and never gate.  Runs over a
    different model geometry than the baseline are refused — comparing
    them would let a real regression hide behind a smaller model.

    v3 results additionally gate their own ``kernels`` section: the
    bit-exactness flags must hold on every run, and full (non-quick)
    runs must keep the int8-resident hot-GEMM speedup at least
    :data:`INT8_SPEEDUP_FLOOR` over the PR-3 reference and the blocked
    fused lane no slower than naive (within ``threshold``).  Quick runs
    skip the two timing gates — 30-iteration medians under CI noise
    would gate nothing real.
    """
    problems: list[str] = []
    incomparable = _incomparability(result, baseline)
    if incomparable:
        return [incomparable]
    old_p50 = baseline["single_sample"]["fused"]["p50_ms"]
    new_p50 = result["single_sample"]["fused"]["p50_ms"]
    limit = old_p50 * (1.0 + threshold)
    if new_p50 > limit:
        problems.append(
            f"fused single-sample p50 regressed: {new_p50:.3f} ms vs baseline "
            f"{old_p50:.3f} ms (> +{threshold:.0%} limit {limit:.3f} ms)"
        )
    if not result["equivalence"]["argmax_match"]:
        problems.append("fused argmax no longer matches the reference forward")
    if result["equivalence"]["max_abs_diff"] >= 1e-5:
        problems.append(
            f"fused max|Δlogit| {result['equivalence']['max_abs_diff']:.2e} >= 1e-5"
        )
    problems.extend(check_kernel_gates(result, threshold=threshold))
    return problems


def check_kernel_gates(result: dict, threshold: float = REGRESSION_THRESHOLD) -> list[str]:
    """Gate a record's own ``kernels`` section (empty list = pass).

    Shared by ``infer-bench --check`` and ``bench_kernels.py --check``
    (which validates the committed record without re-timing).  Records
    without a ``kernels`` section (v1/v2) pass vacuously.
    """
    kernels = result.get("kernels")
    if not kernels:
        return []
    problems: list[str] = []
    exactness = kernels.get("exactness", {})
    if not exactness.get("blocked_matches_monolithic", True):
        problems.append(
            "blocked GEMM no longer bit-identical to the monolithic matmul "
            "on an admitted plan"
        )
    if not exactness.get("accumulate_matches_reference", True):
        problems.append(
            "int8-accumulate engine no longer bit-identical to the integer "
            "reference matmul"
        )
    if result.get("config", {}).get("quick"):
        return problems
    speedup = kernels.get("int8_resident", {}).get("speedup")
    if speedup is not None and speedup < INT8_SPEEDUP_FLOOR:
        problems.append(
            f"int8-resident hot-GEMM speedup {speedup:.2f}x < "
            f"{INT8_SPEEDUP_FLOOR}x floor vs the PR-3 dequant-tile baseline"
        )
    fused = kernels.get("fused", {})
    naive_p50 = fused.get("naive_p50_ms")
    blocked_p50 = fused.get("blocked_p50_ms")
    if naive_p50 and blocked_p50 and blocked_p50 > naive_p50 * (1.0 + threshold):
        problems.append(
            f"blocked fused p50 {blocked_p50:.3f} ms slower than naive "
            f"{naive_p50:.3f} ms (> +{threshold:.0%})"
        )
    return problems


def baseline_hint(result: dict, path: str = DEFAULT_OUTPUT) -> str:
    """Actionable advice when the recorded baseline is not comparable.

    Printed by ``infer-bench --check`` instead of a bare failure: either
    re-run with the baseline's geometry flags, or re-record the baseline
    at the new configuration.
    """
    config = result.get("config", {})
    flags = (
        f"--image-size {config.get('image_size')} "
        f"--num-classes {config.get('num_classes')} "
        f"--max-batch {config.get('max_batch')}"
        + (" --quick" if config.get("quick") else "")
    )
    return (
        f"hint: {path} has no baseline comparable to this run's "
        "configuration.  Either re-run --check with the geometry flags the "
        "baseline was recorded at (see its `config` section), or record a "
        "fresh baseline for this configuration first:\n"
        f"  python -m repro.cli infer-bench {flags} --out {path}\n"
        "and then re-run with --check."
    )


def format_check(
    result: dict,
    baseline: dict,
    problems: list[str],
    threshold: float = REGRESSION_THRESHOLD,
    path: str = DEFAULT_OUTPUT,
) -> str:
    """Human-readable report of a --check comparison."""
    lines = ["perf regression gate (fused lane vs recorded baseline):"]
    if _incomparability(result, baseline) is not None:
        lines.extend(f"  FAIL: {problem}" for problem in problems)
        lines.append("  " + baseline_hint(result, path).replace("\n", "\n  "))
        return "\n".join(lines)
    old_p50 = baseline["single_sample"]["fused"]["p50_ms"]
    new_p50 = result["single_sample"]["fused"]["p50_ms"]
    delta = (new_p50 - old_p50) / old_p50
    lines.append(
        f"  fused p50: {new_p50:.3f} ms vs baseline {old_p50:.3f} ms "
        f"({delta:+.1%}, limit +{threshold:.0%})"
    )
    if problems:
        lines.append("  FAIL:")
        lines.extend(f"    - {problem}" for problem in problems)
    else:
        lines.append("  PASS")
    return "\n".join(lines)


def write_benchmark(result: dict, path: str = DEFAULT_OUTPUT) -> str:
    """Write the benchmark record as pretty JSON; returns the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_summary(result: dict) -> str:
    """Human-readable summary of a benchmark record."""
    single = result["single_sample"]
    batch = result["batch"]
    eq = result["equivalence"]
    lines = [
        "inference throughput benchmark "
        f"(image={result['config']['image_size']}, "
        f"params={result['config']['parameters']:,})",
        f"  single-sample p50:  tape {single['tape']['p50_ms']:.2f} ms | "
        f"no_grad {single['no_grad']['p50_ms']:.2f} ms | "
        f"fused {single['fused']['p50_ms']:.2f} ms",
        f"  fused speedup:      {single['speedup_fused_vs_tape']:.1f}x vs tape, "
        f"{single['speedup_fused_vs_no_grad']:.1f}x vs no_grad",
        f"  batch throughput:   tape {batch['tape_samples_per_s']:.0f}/s | "
        f"fused {batch['fused_samples_per_s']:.0f}/s "
        f"({batch['speedup_fused_vs_tape']:.1f}x)",
        f"  equivalence:        max|Δlogit| = {eq['max_abs_diff']:.2e}, "
        f"argmax match = {eq['argmax_match']}",
    ]
    kernels = result.get("kernels")
    if kernels:
        lines.append(format_kernel_summary(kernels))
    return "\n".join(lines)


def format_kernel_summary(kernels: dict) -> str:
    """Human-readable summary of a ``kernels`` section (schema v3)."""
    int8 = kernels["int8_resident"]
    fused = kernels.get("fused", {})
    exact = kernels["exactness"]
    hot_m, hot_k, hot_n = int8["hot_shape"]
    lines = [
        f"  kernel layer ({kernels['kernel']}):",
        f"    int8 hot GEMM ({int8['hot_site']} {hot_m}x{hot_k}x{hot_n}): "
        f"{int8['hot_baseline_rows_per_s']:.0f} -> "
        f"{int8['hot_tuned_rows_per_s']:.0f} rows/s "
        f"({int8['speedup']:.2f}x, floor {INT8_SPEEDUP_FLOOR}x)",
        f"    int8 stack: baseline {int8['stack_baseline_us']:.0f} us | "
        f"tuned {int8['stack_tuned_us']:.0f} us | "
        f"accumulate {int8['stack_accumulate_us']:.0f} us "
        f"({int8['stack_speedup']:.2f}x)",
    ]
    if fused:
        lines.append(
            f"    fused p50: naive {fused['naive_p50_ms']:.3f} ms | "
            f"blocked {fused['blocked_p50_ms']:.3f} ms "
            f"({fused['speedup']:.2f}x)"
        )
    activated = [row for row in kernels.get("gemm", [])
                 if row["plan"] != "monolithic"]
    if activated:
        lines.append(
            "    blocked plans active: "
            + ", ".join(
                f"{row['site']} ({row['m']}x{row['k']}x{row['n']}: "
                f"{row['speedup']:.2f}x)" for row in activated
            )
        )
    lines.append(
        f"    exactness: blocked=monolithic {exact['blocked_matches_monolithic']}, "
        f"accumulate=reference {exact['accumulate_matches_reference']}"
    )
    return "\n".join(lines)
