"""Inference throughput benchmark: fused engine vs. the autograd tape.

Measures three serving lanes on the same model and inputs:

* ``tape``    — ``model(Tensor(x))`` with gradients recording, i.e. what a
  naive deployment of the training code pays per prediction;
* ``no_grad`` — the module forward inside ``no_grad()`` (the substrate's
  closure-free fast path, still allocating per op);
* ``fused``   — :class:`repro.infer.InferenceSession`.

Results are written to ``BENCH_inference.json`` so every future PR has a
recorded trajectory to regress against.  Schema (``repro.infer.bench.v2``)::

    {
      "schema": "repro.infer.bench.v2",
      "config": {model geometry, iteration counts, seed},
      "single_sample": {
        "tape"|"no_grad"|"fused": {"p50_ms", "p99_ms", "mean_ms"},
        "speedup_fused_vs_tape": float,   # acceptance floor: >= 3.0
        "speedup_fused_vs_no_grad": float
      },
      "batch": {"batch_size", per-lane samples_per_s, "speedup_fused_vs_tape"},
      "equivalence": {"max_abs_diff", "argmax_match"},
      "quantization": {...}   # v2: repro.quant trade-off record
                              # (benchmarks/bench_quantization.py)
    }

v2 adds the optional ``quantization`` section over v1; the regression
gate reads the shared keys only, so ``--check`` accepts both versions.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.infer.session import InferenceSession
from repro.tensor import Tensor, no_grad
from repro.vit.config import VitalConfig
from repro.vit.model import VitalModel

DEFAULT_OUTPUT = "BENCH_inference.json"

#: Current record schema; ``load_baseline`` also accepts the listed
#: predecessors (v2 only adds the optional ``quantization`` section).
SCHEMA = "repro.infer.bench.v2"
COMPATIBLE_SCHEMAS = ("repro.infer.bench.v1", "repro.infer.bench.v2")


def _percentiles(samples_ms: list[float]) -> dict[str, float]:
    arr = np.asarray(samples_ms)
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p99_ms": float(np.percentile(arr, 99)),
        "mean_ms": float(arr.mean()),
    }


def _time_repeated(fn, iterations: int, warmup: int = 3) -> list[float]:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(iterations):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return samples


def run_inference_benchmark(
    image_size: int = 24,
    num_classes: int = 32,
    max_batch: int = 32,
    single_iters: int = 100,
    batch_samples: int = 256,
    seed: int = 0,
    quick: bool = False,
    config: VitalConfig | None = None,
) -> dict:
    """Benchmark the three serving lanes; returns the result record.

    ``quick=True`` shrinks iteration counts so the benchmark runs in
    seconds (CI smoke mode) while keeping the full measurement shape.
    """
    if quick:
        single_iters = min(single_iters, 10)
        batch_samples = min(batch_samples, 2 * max_batch)

    config = config or VitalConfig.fast(image_size)
    rng = np.random.default_rng(seed)
    model = VitalModel(
        config,
        image_size=image_size,
        channels=3,
        num_classes=num_classes,
        rng=rng,
    )
    session = InferenceSession(model, max_batch=max_batch)

    single = rng.standard_normal((1, image_size, image_size, 3)).astype(np.float32)
    batch = rng.standard_normal((batch_samples, image_size, image_size, 3)).astype(np.float32)

    # --- numerical equivalence gate before timing anything
    model.eval()
    with no_grad():
        reference = model(Tensor(batch)).data
    fused = session.predict_many(batch)
    max_abs_diff = float(np.abs(reference - fused).max())
    argmax_match = bool((reference.argmax(axis=1) == fused.argmax(axis=1)).all())

    # --- single-sample latency.  The tape lane is an eval-mode forward with
    # gradients recording — closures, parent references and all — i.e. what
    # serving costs when the training code path is reused verbatim.
    model.eval()

    def tape_one():
        model(Tensor(single))

    def no_grad_one():
        with no_grad():
            model(Tensor(single))

    def fused_one():
        session.predict(single)

    lanes = {
        "tape": _time_repeated(tape_one, single_iters),
        "no_grad": _time_repeated(no_grad_one, single_iters),
        "fused": _time_repeated(fused_one, single_iters),
    }
    single_sample = {name: _percentiles(samples) for name, samples in lanes.items()}
    single_sample["speedup_fused_vs_tape"] = (
        single_sample["tape"]["p50_ms"] / single_sample["fused"]["p50_ms"]
    )
    single_sample["speedup_fused_vs_no_grad"] = (
        single_sample["no_grad"]["p50_ms"] / single_sample["fused"]["p50_ms"]
    )

    # --- batch throughput
    batch_iters = 3 if quick else 10

    def tape_batch():
        for begin in range(0, len(batch), max_batch):
            model(Tensor(batch[begin : begin + max_batch]))

    def fused_batch():
        session.predict_many(batch)

    tape_s = np.median(_time_repeated(tape_batch, batch_iters, warmup=1)) / 1e3
    fused_s = np.median(_time_repeated(fused_batch, batch_iters, warmup=1)) / 1e3

    result = {
        "schema": SCHEMA,
        "config": {
            "image_size": image_size,
            "patch_size": model.patch_size,
            "num_patches": model.num_patches,
            "projection_dim": config.projection_dim,
            "num_heads": config.num_heads,
            "encoder_blocks": config.encoder_blocks,
            "num_classes": num_classes,
            "parameters": model.num_parameters(),
            "max_batch": max_batch,
            "single_iters": single_iters,
            "batch_samples": batch_samples,
            "seed": seed,
            "quick": quick,
        },
        "single_sample": single_sample,
        "batch": {
            "batch_size": max_batch,
            "tape_samples_per_s": float(len(batch) / tape_s),
            "fused_samples_per_s": float(len(batch) / fused_s),
            "speedup_fused_vs_tape": float(tape_s / fused_s),
        },
        "equivalence": {
            "max_abs_diff": max_abs_diff,
            "argmax_match": argmax_match,
        },
    }
    return result


#: Default allowed relative worsening of fused p50 latency before
#: ``infer-bench --check`` fails (the ROADMAP perf-regression gate).
REGRESSION_THRESHOLD = 0.25


def load_baseline(path: str = DEFAULT_OUTPUT) -> dict:
    """Load a recorded inference baseline (schema v1 or v2) from disk."""
    with open(path) as handle:
        baseline = json.load(handle)
    schema = baseline.get("schema")
    if schema not in COMPATIBLE_SCHEMAS:
        raise ValueError(f"{path} is not an inference baseline (schema {schema!r})")
    return baseline


#: Config keys that must match for a latency comparison to mean anything:
#: the model geometry, plus ``quick`` so a 10-iteration smoke run is never
#: judged against a full-length baseline (or vice versa).
_COMPARABLE_KEYS = ("image_size", "patch_size", "num_patches",
                    "projection_dim", "num_heads", "encoder_blocks",
                    "num_classes", "max_batch", "quick")


def _incomparability(result: dict, baseline: dict) -> str | None:
    """Why ``baseline`` cannot gate ``result``, or ``None`` if it can.

    Shared by :func:`check_regression` (which turns it into a failure)
    and :func:`format_check` (which turns it into the actionable hint),
    so the two can never disagree about which branch a run is on.
    """
    result_config = result.get("config", {})
    baseline_config = baseline.get("config", {})
    mismatched = [
        f"{key} {result_config.get(key)!r} != baseline {baseline_config.get(key)!r}"
        for key in _COMPARABLE_KEYS
        if result_config.get(key) != baseline_config.get(key)
    ]
    if mismatched:
        return "config not comparable to the baseline: " + "; ".join(mismatched)
    if "fused" not in baseline.get("single_sample", {}):
        return "baseline record has no fused single-sample lane to compare against"
    return None


def check_regression(
    result: dict,
    baseline: dict,
    threshold: float = REGRESSION_THRESHOLD,
) -> list[str]:
    """Compare a fresh benchmark run against the recorded baseline.

    Returns a list of human-readable failure strings — empty means the
    gate passes.  The gate is on the *fused* lane only (the served path):
    single-sample p50 latency may not worsen by more than ``threshold``
    (relative), and the numerical-equivalence invariants must still hold.
    The tape/no_grad lanes are informational and never gate.  Runs over a
    different model geometry than the baseline are refused — comparing
    them would let a real regression hide behind a smaller model.
    """
    problems: list[str] = []
    incomparable = _incomparability(result, baseline)
    if incomparable:
        return [incomparable]
    old_p50 = baseline["single_sample"]["fused"]["p50_ms"]
    new_p50 = result["single_sample"]["fused"]["p50_ms"]
    limit = old_p50 * (1.0 + threshold)
    if new_p50 > limit:
        problems.append(
            f"fused single-sample p50 regressed: {new_p50:.3f} ms vs baseline "
            f"{old_p50:.3f} ms (> +{threshold:.0%} limit {limit:.3f} ms)"
        )
    if not result["equivalence"]["argmax_match"]:
        problems.append("fused argmax no longer matches the reference forward")
    if result["equivalence"]["max_abs_diff"] >= 1e-5:
        problems.append(
            f"fused max|Δlogit| {result['equivalence']['max_abs_diff']:.2e} >= 1e-5"
        )
    return problems


def baseline_hint(result: dict, path: str = DEFAULT_OUTPUT) -> str:
    """Actionable advice when the recorded baseline is not comparable.

    Printed by ``infer-bench --check`` instead of a bare failure: either
    re-run with the baseline's geometry flags, or re-record the baseline
    at the new configuration.
    """
    config = result.get("config", {})
    flags = (
        f"--image-size {config.get('image_size')} "
        f"--num-classes {config.get('num_classes')} "
        f"--max-batch {config.get('max_batch')}"
        + (" --quick" if config.get("quick") else "")
    )
    return (
        f"hint: {path} has no baseline comparable to this run's "
        "configuration.  Either re-run --check with the geometry flags the "
        "baseline was recorded at (see its `config` section), or record a "
        "fresh baseline for this configuration first:\n"
        f"  python -m repro.cli infer-bench {flags} --out {path}\n"
        "and then re-run with --check."
    )


def format_check(
    result: dict,
    baseline: dict,
    problems: list[str],
    threshold: float = REGRESSION_THRESHOLD,
    path: str = DEFAULT_OUTPUT,
) -> str:
    """Human-readable report of a --check comparison."""
    lines = ["perf regression gate (fused lane vs recorded baseline):"]
    if _incomparability(result, baseline) is not None:
        lines.extend(f"  FAIL: {problem}" for problem in problems)
        lines.append("  " + baseline_hint(result, path).replace("\n", "\n  "))
        return "\n".join(lines)
    old_p50 = baseline["single_sample"]["fused"]["p50_ms"]
    new_p50 = result["single_sample"]["fused"]["p50_ms"]
    delta = (new_p50 - old_p50) / old_p50
    lines.append(
        f"  fused p50: {new_p50:.3f} ms vs baseline {old_p50:.3f} ms "
        f"({delta:+.1%}, limit +{threshold:.0%})"
    )
    if problems:
        lines.append("  FAIL:")
        lines.extend(f"    - {problem}" for problem in problems)
    else:
        lines.append("  PASS")
    return "\n".join(lines)


def write_benchmark(result: dict, path: str = DEFAULT_OUTPUT) -> str:
    """Write the benchmark record as pretty JSON; returns the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_summary(result: dict) -> str:
    """Human-readable summary of a benchmark record."""
    single = result["single_sample"]
    batch = result["batch"]
    eq = result["equivalence"]
    lines = [
        "inference throughput benchmark "
        f"(image={result['config']['image_size']}, "
        f"params={result['config']['parameters']:,})",
        f"  single-sample p50:  tape {single['tape']['p50_ms']:.2f} ms | "
        f"no_grad {single['no_grad']['p50_ms']:.2f} ms | "
        f"fused {single['fused']['p50_ms']:.2f} ms",
        f"  fused speedup:      {single['speedup_fused_vs_tape']:.1f}x vs tape, "
        f"{single['speedup_fused_vs_no_grad']:.1f}x vs no_grad",
        f"  batch throughput:   tape {batch['tape_samples_per_s']:.0f}/s | "
        f"fused {batch['fused_samples_per_s']:.0f}/s "
        f"({batch['speedup_fused_vs_tape']:.1f}x)",
        f"  equivalence:        max|Δlogit| = {eq['max_abs_diff']:.2e}, "
        f"argmax match = {eq['argmax_match']}",
    ]
    return "\n".join(lines)
