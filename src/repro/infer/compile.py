"""Generic tape-free compiler for sequential :class:`repro.nn.Module` stacks.

:func:`compile_module` walks a module tree (``Sequential`` / ``ModuleList``
containers and leaf layers) in forward order and emits a flat list of pure
NumPy ops over contiguous float32 weight exports.  LayerNorm and eval-mode
BatchNorm1d are folded into the dense layer *or* the packed QKV projection
of the attention block that follows them; Dropout and Identity disappear
entirely.  This covers the dense baseline networks (SHERPA's feature
extractor, WiDeep's autoencoder encoder, MLP heads), the CNNLoc
convolutional stack (Conv1d / MaxPool1d / GlobalAveragePool1d) and —
via :class:`repro.nn.MultiHeadSelfAttention` support plus the
:class:`Residual` / :class:`AddConstant` / :class:`TokenMeanPool` chain
wrappers — the ANVIL attention encoder (the last Fig. 7 framework without
a tape-free serving path); the ViT has its own dedicated engine in
:class:`repro.infer.InferenceSession`.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np
from scipy import special as _special

from repro import nn
from repro.infer.kernels import PackedWeight, autotune_gemm
from repro.infer.ops import contiguous_f32, fold_norm_into_dense, softmax_
from repro.infer.session import _validate_max_batch

_Op = Callable[[np.ndarray], np.ndarray]

#: Row count the blocked-kernel dense ops are tuned for — the default
#: ``predict_many`` chunk, i.e. the server-style batch shape.
_TUNE_ROWS = 256


class UnsupportedModuleError(TypeError):
    """Raised when a module cannot be compiled to a tape-free program."""


class Residual:
    """Chain wrapper: ``y = x + chain(x)`` over the wrapped modules.

    Lets :func:`compile_chain` express pre-norm residual blocks
    (``x + attention(norm(x))``) without forcing the network itself into a
    Sequential shape.
    """

    def __init__(self, *modules: nn.Module):
        self.modules = modules


class AddConstant:
    """Chain wrapper: add a fixed array (e.g. learned position embeddings)."""

    def __init__(self, values: np.ndarray):
        self.values = contiguous_f32(values)


class TokenMeanPool:
    """Chain wrapper: mean over the token axis, ``(B, N, D) → (B, D)``."""

    def __init__(self, axis: int = 1):
        self.axis = int(axis)


def _flatten(module: nn.Module) -> list[nn.Module]:
    """Leaf layers of a Sequential/ModuleList tree in forward order."""
    if isinstance(module, nn.Sequential):
        leaves: list[nn.Module] = []
        for child in module.layers:
            leaves.extend(_flatten(child))
        return leaves
    if isinstance(module, nn.ModuleList):
        leaves = []
        for child in module:
            leaves.extend(_flatten(child))
        return leaves
    return [module]


def _activation_op(layer: nn.Module) -> _Op | None:
    if isinstance(layer, nn.ReLU):
        return lambda x: np.maximum(x, 0.0)
    if isinstance(layer, nn.GELU):
        return lambda x: x * (0.5 * (1.0 + _special.erf(x * np.float32(2**-0.5))))
    if isinstance(layer, nn.Tanh):
        return np.tanh
    if isinstance(layer, nn.Sigmoid):
        return _special.expit
    if isinstance(layer, nn.LeakyReLU):
        alpha = np.float32(layer.alpha)
        return lambda x: np.where(x > 0, x, x * alpha)
    if isinstance(layer, nn.Softmax):
        axis = layer.axis

        def softmax(x):
            shifted = x - x.max(axis=axis, keepdims=True)
            np.exp(shifted, out=shifted)
            shifted /= shifted.sum(axis=axis, keepdims=True)
            return shifted

        return softmax
    return None


def _dense_op(weight: np.ndarray, bias: np.ndarray | None,
              kernel: str = "naive") -> _Op:
    if kernel == "blocked":
        weight = contiguous_f32(weight)
        plan = autotune_gemm(_TUNE_ROWS, weight.shape[0], weight.shape[1])
        packed = PackedWeight(weight, plan)

        def blocked(x: np.ndarray) -> np.ndarray:
            x = np.ascontiguousarray(x, dtype=np.float32)
            out = np.empty(x.shape[:-1] + (weight.shape[1],), dtype=np.float32)
            packed.matmul_into(x, out)
            if bias is not None:
                out += bias
            return out

        return blocked
    if bias is None:
        return lambda x: x @ weight
    return lambda x: x @ weight + bias


def _conv1d_op(weight: np.ndarray, bias: np.ndarray | None,
               stride: int, padding: int, in_channels: int) -> _Op:
    """Channels-first 1-D cross-correlation matching :func:`repro.nn.conv1d`.

    A 2-D ``(batch, length)`` input is promoted to ``(batch, 1, length)``
    when the layer expects a single channel — the CNNLoc head feeds its SAE
    code to the convolution exactly this way.
    """
    def conv(x: np.ndarray) -> np.ndarray:
        if x.ndim == 2 and in_channels == 1:
            x = x[:, None, :]
        padded = np.pad(x, ((0, 0), (0, 0), (padding, padding))) if padding else x
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, weight.shape[2], axis=2
        )[:, :, ::stride]
        out = np.einsum("bclk,ock->bol", windows, weight, optimize=True)
        if bias is not None:
            out += bias[None, :, None]
        return out

    return conv


def _attention_op(attn: nn.MultiHeadSelfAttention,
                  gamma: np.ndarray | None = None,
                  beta: np.ndarray | None = None) -> _Op:
    """Eval-mode multi-head self-attention over ``(B, N, D)`` sequences.

    The Q/K/V projections are packed into one ``(D, 3D)`` matmul exactly
    like the ViT engine (:class:`repro.infer.InferenceSession`); when the
    attention follows a LayerNorm its affine parameters are folded into
    the packed projection, so only the affine-free normalization runs at
    serve time.  Attention-weight dropout vanishes in eval mode.
    """
    heads, head_dim, dim = attn.heads, attn.head_dim, attn.dim
    packed_w = np.concatenate(
        [attn.query.weight.data, attn.key.weight.data, attn.value.weight.data],
        axis=1,
    )
    packed_b = np.concatenate(
        [attn.query.bias.data, attn.key.bias.data, attn.value.bias.data]
    )
    if gamma is not None:
        packed_w, packed_b = fold_norm_into_dense(gamma, beta, packed_w, packed_b)
    else:
        packed_w, packed_b = contiguous_f32(packed_w), contiguous_f32(packed_b)
    w_out = contiguous_f32(attn.out.weight.data)
    b_out = contiguous_f32(attn.out.bias.data)
    scale = np.float32(attn.scale)

    def attention(x: np.ndarray) -> np.ndarray:
        b, seq, _d = x.shape
        qkv = (x @ packed_w + packed_b).reshape(b, seq, 3, heads, head_dim)
        q = qkv[:, :, 0].transpose(0, 2, 1, 3)  # (b, h, N, hd) views
        k = qkv[:, :, 1].transpose(0, 2, 1, 3)
        v = qkv[:, :, 2].transpose(0, 2, 1, 3)
        scores = softmax_((q @ k.transpose(0, 1, 3, 2)) * scale)
        merged = (scores @ v).transpose(0, 2, 1, 3).reshape(b, seq, dim)
        return merged @ w_out + b_out

    return attention


def _max_pool1d_op(kernel: int, stride: int) -> _Op:
    def pool(x: np.ndarray) -> np.ndarray:
        windows = np.lib.stride_tricks.sliding_window_view(x, kernel, axis=2)[:, :, ::stride]
        return windows.max(axis=-1)

    return pool


def _norm_op(gamma, beta, eps: float) -> _Op:
    def norm(x):
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = np.square(centered).mean(axis=-1, keepdims=True)
        return centered / np.sqrt(var + eps) * gamma + beta

    return norm


def _affine_free_norm_op(eps: float) -> _Op:
    def norm(x):
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = np.square(centered).mean(axis=-1, keepdims=True)
        return centered / np.sqrt(var + eps)

    return norm


class CompiledModule:
    """A tape-free program compiled from a sequential module stack."""

    def __init__(self, ops: list[_Op], source: str):
        self._ops = ops
        self.source = source

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Forward plain NumPy features through the compiled program."""
        x = np.asarray(features, dtype=np.float32)
        for op in self._ops:
            x = op(x)
        return x

    def predict_many(self, features: np.ndarray, max_batch: int = 256) -> np.ndarray:
        """Micro-batched forward for large server-style workloads."""
        max_batch = _validate_max_batch(max_batch)
        x = np.asarray(features, dtype=np.float32)
        if len(x) <= max_batch:
            return self.predict(x)
        chunks = [self.predict(x[b : b + max_batch]) for b in range(0, len(x), max_batch)]
        return np.concatenate(chunks, axis=0)

    def __call__(self, features: np.ndarray) -> np.ndarray:
        return self.predict(features)

    def __repr__(self) -> str:
        return f"CompiledModule({self.source}, ops={len(self._ops)})"


def compile_chain(modules: Iterable[nn.Module], source: str = "chain",
                  kernel: str = "naive") -> CompiledModule:
    """Compile an explicit sequence of modules applied one after another.

    ``kernel="blocked"`` routes every dense op through a pre-packed,
    autotuned :func:`repro.infer.kernels.gemm_into` layout (tuned for the
    default ``predict_many`` chunk); the default ``"naive"`` keeps the
    plain ``x @ w`` closures."""
    leaves: list[nn.Module] = []
    for module in modules:
        leaves.extend(_flatten(module))

    ops: list[_Op] = []
    index = 0
    while index < len(leaves):
        layer = leaves[index]
        if isinstance(layer, (nn.Dropout, nn.Identity)):
            index += 1
            continue
        if isinstance(layer, Residual):
            inner = compile_chain(layer.modules, source=f"{source}.residual",
                                  kernel=kernel)
            ops.append(lambda x, _inner=inner: x + _inner.predict(x))
            index += 1
            continue
        if isinstance(layer, AddConstant):
            ops.append(lambda x, _values=layer.values: x + _values)
            index += 1
            continue
        if isinstance(layer, TokenMeanPool):
            ops.append(lambda x, _axis=layer.axis: x.mean(axis=_axis))
            index += 1
            continue
        if isinstance(layer, nn.MultiHeadSelfAttention):
            ops.append(_attention_op(layer))
            index += 1
            continue
        if isinstance(layer, nn.Flatten):
            ops.append(lambda x: x.reshape(len(x), -1))
            index += 1
            continue
        if isinstance(layer, nn.Dense):
            ops.append(_dense_op(
                contiguous_f32(layer.weight.data),
                contiguous_f32(layer.bias.data) if layer.bias is not None else None,
                kernel=kernel,
            ))
            index += 1
            continue
        if isinstance(layer, nn.Conv1d):
            ops.append(_conv1d_op(
                contiguous_f32(layer.weight.data),
                contiguous_f32(layer.bias.data) if layer.bias is not None else None,
                layer.stride,
                layer.padding,
                layer.in_channels,
            ))
            index += 1
            continue
        if isinstance(layer, nn.MaxPool1d):
            ops.append(_max_pool1d_op(layer.kernel_size, layer.stride))
            index += 1
            continue
        if isinstance(layer, nn.GlobalAveragePool1d):
            ops.append(lambda x: x.mean(axis=-1))
            index += 1
            continue
        if isinstance(layer, nn.LayerNorm):
            # Fold the affine parameters into an immediately following
            # Dense or attention QKV projection.
            following = leaves[index + 1] if index + 1 < len(leaves) else None
            if isinstance(following, nn.Dense):
                w, b = fold_norm_into_dense(
                    layer.gamma.data,
                    layer.beta.data,
                    following.weight.data,
                    following.bias.data if following.bias is not None else None,
                )
                ops.append(_affine_free_norm_op(layer.eps))
                ops.append(_dense_op(w, b, kernel=kernel))
                index += 2
            elif isinstance(following, nn.MultiHeadSelfAttention):
                ops.append(_affine_free_norm_op(layer.eps))
                ops.append(_attention_op(
                    following, layer.gamma.data, layer.beta.data
                ))
                index += 2
            else:
                ops.append(_norm_op(
                    contiguous_f32(layer.gamma.data),
                    contiguous_f32(layer.beta.data),
                    layer.eps,
                ))
                index += 1
            continue
        if isinstance(layer, nn.BatchNorm1d):
            # Eval-mode batch norm is a per-feature affine map; precompute it.
            scale = layer.gamma.data / np.sqrt(layer.running_var + layer.eps)
            shift = layer.beta.data - layer.running_mean * scale
            following = leaves[index + 1] if index + 1 < len(leaves) else None
            if isinstance(following, nn.Dense):
                w, b = fold_norm_into_dense(
                    scale,
                    shift,
                    following.weight.data,
                    following.bias.data if following.bias is not None else None,
                )
                ops.append(_dense_op(w, b, kernel=kernel))
                index += 2
            else:
                ops.append(_dense_op_affine(contiguous_f32(scale), contiguous_f32(shift)))
                index += 1
            continue
        activation = _activation_op(layer)
        if activation is not None:
            ops.append(activation)
            index += 1
            continue
        raise UnsupportedModuleError(
            f"cannot compile layer {layer!r}; supported: Dense, Conv1d, "
            "MaxPool1d, GlobalAveragePool1d, MultiHeadSelfAttention, "
            "activations, LayerNorm, BatchNorm1d (eval), Dropout, Flatten, "
            "Identity, and the Residual/AddConstant/TokenMeanPool wrappers "
            "(use InferenceSession for the ViT)"
        )
    return CompiledModule(ops, source)


def _dense_op_affine(scale: np.ndarray, shift: np.ndarray) -> _Op:
    return lambda x: x * scale + shift


def compile_module(module: nn.Module, kernel: str = "naive") -> CompiledModule:
    """Compile a Sequential/ModuleList module tree into a tape-free program."""
    return compile_chain([module], source=type(module).__name__, kernel=kernel)
