"""Allocation-lean NumPy kernels for the tape-free inference engine.

Every kernel writes into caller-provided scratch buffers (``out=`` /
in-place) so a compiled forward pass allocates no large intermediates.
The math mirrors the :class:`repro.tensor.Tensor` primitives bit-for-bit
modulo float32 rounding: the equivalence tests pin fused logits to the
reference forward within 1e-5.
"""

from __future__ import annotations

import numpy as np
from scipy import special as _special

from repro.infer.kernels import (
    PackedWeight,
    int8_accumulate_into,
    quantize_rows_,
)

_INV_SQRT2 = np.float32(1.0 / np.sqrt(2.0))

#: Matmul strategies of a :class:`QuantizedLinear`: decode int8 tiles to
#: float32 inside the matmul (the PR-3 baseline) vs. quantize the
#: activations on the fly and accumulate int8 x int8 products exactly.
MATMUL_MODES = ("dequant_tile", "int8_accumulate")


def contiguous_f32(array: np.ndarray) -> np.ndarray:
    """Copy ``array`` into a fresh C-contiguous float32 array."""
    return np.ascontiguousarray(np.asarray(array), dtype=np.float32)


def fold_norm_into_dense(
    gamma: np.ndarray,
    beta: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold LayerNorm affine parameters into the following dense layer.

    ``LN(x) @ W + c`` with ``LN(x) = g * n(x) + b`` (``n`` the affine-free
    normalization) equals ``n(x) @ (g[:, None] * W) + (b @ W + c)``; the
    fold is exact, so the engine only ever computes ``n(x)`` and one
    matmul.  Folding runs in float64 and rounds once to float32.
    """
    w64 = np.asarray(weight, dtype=np.float64)
    g64 = np.asarray(gamma, dtype=np.float64)
    b64 = np.asarray(beta, dtype=np.float64)
    folded_w = g64[:, None] * w64
    folded_b = b64 @ w64
    if bias is not None:
        folded_b = folded_b + np.asarray(bias, dtype=np.float64)
    return contiguous_f32(folded_w), contiguous_f32(folded_b)


def layer_norm_(x: np.ndarray, eps: float, out: np.ndarray) -> np.ndarray:
    """Affine-free LayerNorm over the trailing axis, written into ``out``.

    The learnable gain/shift are folded into the next matmul by
    :func:`fold_norm_into_dense`, so the kernel only centers and scales.
    """
    mean = x.mean(axis=-1, keepdims=True)
    np.subtract(x, mean, out=out)
    var = np.einsum("...d,...d->...", out, out)[..., None]
    var /= x.shape[-1]
    var += eps
    np.sqrt(var, out=var)
    out /= var
    return out


def softmax_(x: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the trailing axis, fully in place."""
    x -= x.max(axis=-1, keepdims=True)
    np.exp(x, out=x)
    x /= x.sum(axis=-1, keepdims=True)
    return x


def gelu_(x: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """Exact erf-based GELU applied in place to ``x`` using scratch ``tmp``."""
    np.multiply(x, _INV_SQRT2, out=tmp)
    _special.erf(tmp, out=tmp)
    tmp += 1.0
    tmp *= 0.5
    x *= tmp
    return x


class QuantizedLinear:
    """An int8 weight matrix with two in-matmul execution strategies.

    Holds ``(in, out)`` int8 codes plus either one scalar scale
    (per-tensor) or a ``(out,)`` per-output-channel scale vector, so the
    resident weight footprint stays ~4x below float32.  ``matmul_mode``
    selects how :meth:`matmul_into` runs:

    * ``"dequant_tile"`` (the PR-3 fallback, tuned) streams ``tile``
      output columns at a time through one reusable float32 scratch tile
      and matmuls straight into the caller's output slice — no full
      float32 copy of the weight ever exists.  The panel is *cast* from
      int8 (never multiplied by its scale); the weight scale lands on
      the output block instead, which is the same column scaling
      (``(x @ c) * s == x @ (c * s)`` up to float rounding) at a
      fraction of the per-call decode cost, since the output block has
      ``M x tile`` elements against the panel's ``K x tile``.
    * ``"int8_accumulate"`` quantizes the incoming activations to int8
      codes on the fly (per-row dynamic scale,
      :func:`repro.infer.kernels.quantize_rows_`) and contracts codes
      against codes with int32-exact accumulation
      (:func:`repro.infer.kernels.int8_accumulate_into`), applying
      ``act_scale * weight_scale`` once per output block.  The weight
      panel is *cast*, never multiplied by its scale, which is what
      makes this the faster int8-resident path.

    :meth:`materialize` decodes to a full float32 matrix (for the
    dequantize-on-load serving mode).  All scratch buffers are lazily
    allocated and excluded from pickles, so a quantized session snapshot
    ships codes + scales only.
    """

    __slots__ = ("codes", "scales", "tile", "matmul_mode",
                 "_scratch", "_q", "_row_scales")

    def __init__(self, codes: np.ndarray, scales, tile: int = 64,
                 matmul_mode: str = "dequant_tile"):
        codes = np.asarray(codes)
        if not np.issubdtype(codes.dtype, np.integer):
            raise ValueError(f"codes must be integers, got dtype {codes.dtype}")
        if codes.dtype != np.int8 and codes.size and (
            codes.min() < -128 or codes.max() > 127
        ):
            raise ValueError(
                f"codes exceed the int8 range (dtype {codes.dtype}); "
                "QuantizedLinear stores 8-bit codes only"
            )
        codes = np.ascontiguousarray(codes, dtype=np.int8)
        if codes.ndim != 2:
            raise ValueError(f"QuantizedLinear needs a 2-D weight, got {codes.shape}")
        scales = np.asarray(scales, dtype=np.float32)
        if scales.ndim not in (0, 1) or (
            scales.ndim == 1 and len(scales) != codes.shape[1]
        ):
            raise ValueError(
                f"scales must be scalar or ({codes.shape[1]},), got {scales.shape}"
            )
        if isinstance(tile, bool) or not isinstance(tile, (int, np.integer)) \
                or tile < 1:
            raise ValueError(
                f"tile must be a positive integer, got {tile!r}; the decode "
                "tile width is respected as given, not clamped"
            )
        if matmul_mode not in MATMUL_MODES:
            raise ValueError(
                f"matmul_mode must be one of {MATMUL_MODES}, got {matmul_mode!r}"
            )
        self.codes = codes
        self.scales = scales
        self.tile = int(tile)
        self.matmul_mode = matmul_mode
        self._scratch = None
        self._q = None
        self._row_scales = None

    @property
    def shape(self) -> tuple[int, int]:
        return self.codes.shape

    @property
    def nbytes(self) -> int:
        """Resident weight bytes (codes + scales)."""
        return self.codes.nbytes + self.scales.nbytes

    def materialize(self) -> np.ndarray:
        """Decode to one C-contiguous float32 weight matrix."""
        return np.ascontiguousarray(self.codes.astype(np.float32) * self.scales)

    def matmul_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``x @ weight`` written into ``out`` via the configured mode."""
        n_in, n_out = self.codes.shape
        if n_out == 0:
            return out
        if n_in == 0:
            # Empty reduction: the sum over zero products is exactly 0 in
            # either mode; returning early keeps the scale math (which
            # would divide by a 0-d view) out of the degenerate case.
            out[...] = 0.0
            return out
        width = min(self.tile, n_out)
        if self._scratch is None or self._scratch.shape != (n_in, width):
            self._scratch = np.empty((n_in, width), dtype=np.float32)
        if self.matmul_mode == "int8_accumulate":
            return self._accumulate_into(x, out)
        per_channel = self.scales.ndim == 1
        for begin in range(0, n_out, width):
            end = min(begin + width, n_out)
            w = self._scratch[:, : end - begin]
            np.copyto(w, self.codes[:, begin:end], casting="unsafe")
            target = out[..., begin:end]
            np.matmul(x, w, out=target)
            scale = self.scales[begin:end] if per_channel else self.scales
            np.multiply(target, scale, out=target)
        return out

    def _accumulate_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Int8-accumulate path: dynamic activation codes, exact contraction."""
        if self._q is None or self._q.shape != x.shape:
            self._q = np.empty(x.shape, dtype=np.float32)
            self._row_scales = np.empty(x.shape[:-1] + (1,), dtype=np.float32)
        quantize_rows_(x, self._q, self._row_scales)
        return int8_accumulate_into(
            self._q, self.codes, self.scales, self._row_scales, out, self._scratch
        )

    def __getstate__(self) -> dict:
        return {"codes": self.codes, "scales": self.scales, "tile": self.tile,
                "matmul_mode": self.matmul_mode}

    def __setstate__(self, state: dict) -> None:
        self.codes = state["codes"]
        self.scales = state["scales"]
        self.tile = state["tile"]
        self.matmul_mode = state.get("matmul_mode", "dequant_tile")
        self._scratch = None
        self._q = None
        self._row_scales = None

    def __repr__(self) -> str:
        granularity = "per_channel" if self.scales.ndim == 1 else "per_tensor"
        return (f"QuantizedLinear(shape={self.codes.shape}, {granularity}, "
                f"{self.matmul_mode})")


def dense_(x: np.ndarray, weight, bias: np.ndarray | None,
           out: np.ndarray) -> np.ndarray:
    """``x @ weight + bias`` written into ``out`` (strided ``out`` is fine).

    ``weight`` is a float32 array, a :class:`QuantizedLinear` (int8 codes
    executed per its ``matmul_mode``) or a
    :class:`repro.infer.kernels.PackedWeight` (float32 bound to a tuned
    blocked plan) — the call sites in the fused engine stay identical
    across precisions and kernels.
    """
    if isinstance(weight, (QuantizedLinear, PackedWeight)):
        weight.matmul_into(x, out)
    else:
        np.matmul(x, weight, out=out)
    if bias is not None:
        out += bias
    return out
