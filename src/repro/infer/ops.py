"""Allocation-lean NumPy kernels for the tape-free inference engine.

Every kernel writes into caller-provided scratch buffers (``out=`` /
in-place) so a compiled forward pass allocates no large intermediates.
The math mirrors the :class:`repro.tensor.Tensor` primitives bit-for-bit
modulo float32 rounding: the equivalence tests pin fused logits to the
reference forward within 1e-5.
"""

from __future__ import annotations

import numpy as np
from scipy import special as _special

_INV_SQRT2 = np.float32(1.0 / np.sqrt(2.0))


def contiguous_f32(array: np.ndarray) -> np.ndarray:
    """Copy ``array`` into a fresh C-contiguous float32 array."""
    return np.ascontiguousarray(np.asarray(array), dtype=np.float32)


def fold_norm_into_dense(
    gamma: np.ndarray,
    beta: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold LayerNorm affine parameters into the following dense layer.

    ``LN(x) @ W + c`` with ``LN(x) = g * n(x) + b`` (``n`` the affine-free
    normalization) equals ``n(x) @ (g[:, None] * W) + (b @ W + c)``; the
    fold is exact, so the engine only ever computes ``n(x)`` and one
    matmul.  Folding runs in float64 and rounds once to float32.
    """
    w64 = np.asarray(weight, dtype=np.float64)
    g64 = np.asarray(gamma, dtype=np.float64)
    b64 = np.asarray(beta, dtype=np.float64)
    folded_w = g64[:, None] * w64
    folded_b = b64 @ w64
    if bias is not None:
        folded_b = folded_b + np.asarray(bias, dtype=np.float64)
    return contiguous_f32(folded_w), contiguous_f32(folded_b)


def layer_norm_(x: np.ndarray, eps: float, out: np.ndarray) -> np.ndarray:
    """Affine-free LayerNorm over the trailing axis, written into ``out``.

    The learnable gain/shift are folded into the next matmul by
    :func:`fold_norm_into_dense`, so the kernel only centers and scales.
    """
    mean = x.mean(axis=-1, keepdims=True)
    np.subtract(x, mean, out=out)
    var = np.einsum("...d,...d->...", out, out)[..., None]
    var /= x.shape[-1]
    var += eps
    np.sqrt(var, out=var)
    out /= var
    return out


def softmax_(x: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the trailing axis, fully in place."""
    x -= x.max(axis=-1, keepdims=True)
    np.exp(x, out=x)
    x /= x.sum(axis=-1, keepdims=True)
    return x


def gelu_(x: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """Exact erf-based GELU applied in place to ``x`` using scratch ``tmp``."""
    np.multiply(x, _INV_SQRT2, out=tmp)
    _special.erf(tmp, out=tmp)
    tmp += 1.0
    tmp *= 0.5
    x *= tmp
    return x


def dense_(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None,
           out: np.ndarray) -> np.ndarray:
    """``x @ weight + bias`` written into ``out`` (strided ``out`` is fine)."""
    np.matmul(x, weight, out=out)
    if bias is not None:
        out += bias
    return out
