"""Cache-blocked GEMM kernels and the int8-accumulate engine.

This module is the kernel layer under the fused inference engine.  It
provides three things:

* :func:`gemm_into` — a blocked float32 GEMM that tiles the M (rows) and
  N (columns) dimensions of ``x @ w`` into cache-resident panels.  The K
  (reduction) dimension is never split, so every output element is still
  one BLAS dot product over the full reduction — which is what makes the
  bit-exactness probe below possible.
* :func:`autotune_gemm` — a one-shot tuner that times candidate
  :class:`GemmPlan` block layouts for a concrete ``(M, K, N)`` shape and
  returns the fastest plan **that is bit-identical to a monolithic
  ``np.matmul``** on that shape.  BLAS kernel selection (and therefore
  the exact floating-point summation order) depends on the operand
  shapes, not on the data, so a single dense random probe proves a plan
  exact for every input of that shape.  Plans that fail the probe are
  discarded; the monolithic plan is always admissible, so the tuner can
  only ever return something both fast and exact.
* the int8-accumulate engine — :func:`quantize_rows_` +
  :func:`int8_accumulate_into` — which quantizes an activation panel to
  int8 codes on the fly (per-row dynamic scale) and accumulates
  ``codes_x @ codes_w`` exactly in integer arithmetic, applying
  ``act_scale * weight_scale`` once per output block.

Exact integer accumulation without integer BLAS
-----------------------------------------------
NumPy's integer ``matmul`` has no BLAS backend (measured ~25x slower
than the dequantize-tile baseline on this host), so the production
engine runs the accumulation through *float32* BLAS instead: int8 codes
are cast to integer-valued float32, and because every product is at most
``127 * 127 = 16129``, any partial sum of up to :data:`EXACT_ACCUM_K`
products stays below ``2**24`` — exactly representable in float32, in
any summation order.  For reductions deeper than that the K dimension is
chunked and the (exact) chunk sums are accumulated in int64-exact
float64.  :func:`int8_accumulate_reference` implements the literal
widened int16/int32 ``np.matmul`` version of the same contraction; the
test suite pins the fast engine to it bit-for-bit.
"""

from __future__ import annotations

import os
import time

import numpy as np

#: Deepest K panel whose int8xint8 partial sums are exact in float32:
#: 1024 * 127 * 127 = 16_516_096 < 2**24.
EXACT_ACCUM_K = 1024

#: Float32 scratch budget for one quantized decode/cast panel (~L2-sized).
QUANT_PANEL_CAP_BYTES = 512 * 1024

#: Recognized kernel kinds for sessions / CLI / env override.
KERNELS = ("blocked", "naive")


class GemmPlan:
    """Block layout of one GEMM site: row blocks of ``mb``, column panels
    of ``nb`` (``None`` means unblocked along that dimension).  The plan
    with both ``None`` is the monolithic ``np.matmul`` call."""

    __slots__ = ("mb", "nb")

    def __init__(self, mb: int | None = None, nb: int | None = None):
        for name, value in (("mb", mb), ("nb", nb)):
            if value is not None and (not isinstance(value, (int, np.integer))
                                      or isinstance(value, bool) or value < 1):
                raise ValueError(f"{name} must be a positive int or None, got {value!r}")
        self.mb = int(mb) if mb is not None else None
        self.nb = int(nb) if nb is not None else None

    @property
    def blocked(self) -> bool:
        return self.mb is not None or self.nb is not None

    def as_dict(self) -> dict:
        return {"mb": self.mb, "nb": self.nb}

    @classmethod
    def from_dict(cls, data: dict) -> "GemmPlan":
        return cls(mb=data.get("mb"), nb=data.get("nb"))

    def __eq__(self, other) -> bool:
        return isinstance(other, GemmPlan) and (self.mb, self.nb) == (other.mb, other.nb)

    def __hash__(self) -> int:
        return hash((self.mb, self.nb))

    def __repr__(self) -> str:
        if not self.blocked:
            return "GemmPlan(monolithic)"
        return f"GemmPlan(mb={self.mb}, nb={self.nb})"


MONOLITHIC = GemmPlan()


def pack_panels(weight: np.ndarray, nb: int) -> list[np.ndarray]:
    """Pre-pack ``(K, N)`` weight columns into C-contiguous ``nb``-wide
    panels, chosen once per geometry so the per-call loop streams each
    panel through cache without re-striding the full matrix."""
    weight = np.ascontiguousarray(weight, dtype=np.float32)
    return [np.ascontiguousarray(weight[:, begin : begin + nb])
            for begin in range(0, weight.shape[1], nb)]


def gemm_into(
    x: np.ndarray,
    w: np.ndarray,
    out: np.ndarray,
    plan: GemmPlan = MONOLITHIC,
    panels: list[np.ndarray] | None = None,
) -> np.ndarray:
    """Blocked ``x @ w`` written into ``out``.

    ``x`` may be 2-D or batched N-D (row blocking tiles the leading
    axis).  K is never split, so a plan admitted by the autotuner's
    bit-exactness probe reproduces ``np.matmul(x, w, out=out)`` exactly.
    ``panels`` is the optional pre-packed column layout from
    :func:`pack_panels`; column slices of ``w`` are used when absent.
    """
    if not plan.blocked:
        np.matmul(x, w, out=out)
        return out
    rows = x.shape[0]
    mb = plan.mb or rows
    nb = plan.nb
    for m0 in range(0, rows, mb):
        m1 = min(m0 + mb, rows)
        xm = x[m0:m1]
        om = out[m0:m1]
        if nb is None:
            np.matmul(xm, w, out=om)
        else:
            for j, n0 in enumerate(range(0, w.shape[1], nb)):
                n1 = min(n0 + nb, w.shape[1])
                panel = panels[j] if panels is not None else w[:, n0:n1]
                np.matmul(xm, panel, out=om[..., n0:n1])
    return out


class PackedWeight:
    """A float32 weight bound to a tuned :class:`GemmPlan`, with column
    panels pre-packed once at bind time.  ``dense_`` dispatches on this
    type the same way it does on :class:`QuantizedLinear`."""

    __slots__ = ("array", "plan", "panels")

    def __init__(self, array: np.ndarray, plan: GemmPlan | dict | None):
        self.array = np.ascontiguousarray(array, dtype=np.float32)
        if self.array.ndim != 2:
            raise ValueError(f"PackedWeight needs a 2-D weight, got {self.array.shape}")
        if plan is None:
            plan = MONOLITHIC
        elif isinstance(plan, dict):
            plan = GemmPlan.from_dict(plan)
        self.plan = plan
        self.panels = pack_panels(self.array, plan.nb) if plan.nb else None

    @property
    def shape(self) -> tuple[int, int]:
        return self.array.shape

    @property
    def nbytes(self) -> int:
        """Resident bytes: the weight plus any pre-packed panel copies."""
        total = self.array.nbytes
        if self.panels is not None:
            total += sum(p.nbytes for p in self.panels)
        return total

    def matmul_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        return gemm_into(x, self.array, out, self.plan, self.panels)

    def __getstate__(self) -> dict:
        return {"array": self.array, "plan": self.plan.as_dict()}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["array"], state["plan"])

    def __repr__(self) -> str:
        return f"PackedWeight(shape={self.array.shape}, plan={self.plan!r})"


# ---------------------------------------------------------------------------
# autotuner
# ---------------------------------------------------------------------------

#: Process-level plan cache keyed by (M, K, N); tuning happens once per
#: distinct GEMM shape per process.
_PLAN_CACHE: dict[tuple[int, int, int], GemmPlan] = {}

#: Candidate row-block / column-panel sizes the tuner tries.  Column
#: panels are sized so one float32 panel of the deepest serving K stays
#: within a few hundred KiB of L2.
_MB_CANDIDATES = (32, 64, 128, 256)
_NB_CANDIDATES = (64, 128, 256)


def resolve_kernel(kernel: str = "auto") -> str:
    """Resolve a ``kernel=`` argument against the ``REPRO_KERNEL`` env
    override.  Explicit ``"blocked"``/``"naive"`` always win; ``"auto"``
    honors the environment and defaults to ``"blocked"``."""
    if kernel not in ("auto",) + KERNELS:
        raise ValueError(f"kernel must be one of {('auto',) + KERNELS}, got {kernel!r}")
    if kernel != "auto":
        return kernel
    env = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if env in KERNELS:
        return env
    return "blocked"


def clear_plan_cache() -> None:
    """Drop all memoized plans (test hook / after changing env overrides)."""
    _PLAN_CACHE.clear()


def plan_cache_summary() -> dict:
    """Read-only view of the process-wide autotune cache for observability
    (``repro.obs`` / ``repro.cli obs``): which GEMM shapes this process
    has tuned and what plan each got.  Keys are ``"MxKxN"`` strings so the
    dict is directly JSON-serializable."""
    return {
        "%dx%dx%d" % key: plan.as_dict()
        for key, plan in sorted(_PLAN_CACHE.items())
    }


def tune_quant_tile(n_in: int, n_out: int,
                    cap_bytes: int = QUANT_PANEL_CAP_BYTES) -> int:
    """Panel width for a quantized ``(n_in, n_out)`` weight's in-matmul
    decode/cast scratch: as wide as the cache budget allows.

    Narrow fixed tiles starve BLAS — the PR-3 default of 64 columns
    measures ~1.9x slower than a full-width panel at the serving shapes
    of this model family — while the byte cap keeps the float32 panel of
    a genuinely large layer cache-resident.  Deterministic (size-based,
    no timing), so snapshots restored on another host bind identically.
    """
    if n_out < 1:
        return 1
    width = max(1, cap_bytes // (4 * max(1, n_in)))
    return min(n_out, width)


def _env_forced_plan() -> GemmPlan | None:
    """Block sizes forced via ``REPRO_KERNEL_MB`` / ``REPRO_KERNEL_NB``."""
    mb = os.environ.get("REPRO_KERNEL_MB")
    nb = os.environ.get("REPRO_KERNEL_NB")
    if mb is None and nb is None:
        return None
    return GemmPlan(mb=int(mb) if mb else None, nb=int(nb) if nb else None)


def plan_is_exact(m: int, k: int, n: int, plan: GemmPlan,
                  panels: list[np.ndarray] | None = None,
                  probe: tuple[np.ndarray, np.ndarray] | None = None) -> bool:
    """True when ``plan`` reproduces monolithic ``np.matmul`` bit-for-bit
    on shape ``(m, k) @ (k, n)``.  BLAS summation order is determined by
    the operand shapes, so one dense random probe decides the shape."""
    if probe is None:
        probe = _probe_operands(m, k, n)
    x, w = probe
    if plan.nb and panels is None:
        panels = pack_panels(w, plan.nb)
    reference = np.matmul(x, w)
    out = np.empty_like(reference)
    gemm_into(x, w, out, plan, panels)
    return bool(np.array_equal(reference, out))


def _probe_operands(m: int, k: int, n: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(0xC0FFEE ^ (m * 73_856_093) ^ (k * 19_349_663)
                                ^ (n * 83_492_791))
    x = rng.standard_normal((m, k), dtype=np.float32)
    w = rng.standard_normal((k, n), dtype=np.float32)
    return x, w


def _time_plan(x, w, out, plan, panels, iters: int) -> float:
    gemm_into(x, w, out, plan, panels)  # warm-up / first-touch
    best = float("inf")
    for _ in range(iters):
        start = time.perf_counter()
        gemm_into(x, w, out, plan, panels)
        best = min(best, time.perf_counter() - start)
    return best


def autotune_gemm(m: int, k: int, n: int, *, iters: int = 2,
                  cache: bool = True) -> GemmPlan:
    """Pick the fastest bit-exact :class:`GemmPlan` for ``(m, k) @ (k, n)``.

    One-shot: candidate layouts are probed for bit-exactness against the
    monolithic call and timed on synthetic operands; the winner is
    memoized per shape for the life of the process.  ``REPRO_KERNEL=naive``
    forces the monolithic plan; ``REPRO_KERNEL_MB`` / ``REPRO_KERNEL_NB``
    force specific block sizes (still subject to the exactness probe —
    an inexact forced plan falls back to monolithic).
    """
    if min(m, k, n) < 1:
        return MONOLITHIC
    if os.environ.get("REPRO_KERNEL", "").strip().lower() == "naive":
        return MONOLITHIC
    forced = _env_forced_plan()
    if forced is not None:
        return forced if plan_is_exact(m, k, n, forced) else MONOLITHIC
    key = (int(m), int(k), int(n))
    if cache and key in _PLAN_CACHE:
        return _PLAN_CACHE[key]

    probe = _probe_operands(m, k, n)
    x, w = probe
    out = np.empty((m, n), dtype=np.float32)
    candidates = [MONOLITHIC]
    candidates += [GemmPlan(mb=mb) for mb in _MB_CANDIDATES if mb < m]
    candidates += [GemmPlan(nb=nb) for nb in _NB_CANDIDATES if nb < n]

    best_plan, best_time = MONOLITHIC, float("inf")
    for plan in candidates:
        panels = pack_panels(w, plan.nb) if plan.nb else None
        if plan.blocked and not plan_is_exact(m, k, n, plan, panels, probe):
            continue
        elapsed = _time_plan(x, w, out, plan, panels, iters)
        if elapsed < best_time:
            best_plan, best_time = plan, elapsed
    if cache:
        _PLAN_CACHE[key] = best_plan
    return best_plan


# ---------------------------------------------------------------------------
# int8-accumulate engine
# ---------------------------------------------------------------------------

def quantize_rows_(x: np.ndarray, q: np.ndarray,
                   scales: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-row dynamic int8 quantization of a float32 activation panel.

    Writes integer-valued float32 codes in ``[-127, 127]`` into ``q``
    (same shape as ``x``) and the per-row scale ``amax / 127`` into
    ``scales`` (shape ``x.shape[:-1] + (1,)``).  All-zero rows get scale
    0 and codes 0, so ``codes * scale`` reconstructs them exactly.  The
    codes stay float32 — not int8 — because the accumulating matmul runs
    on float32 BLAS; their *values* are exact small integers.
    """
    np.abs(x, out=q)
    amax = np.amax(q, axis=-1, keepdims=True)
    np.divide(amax, np.float32(127.0), out=scales)
    inv = np.zeros_like(scales)
    np.divide(np.float32(1.0), scales, out=inv, where=scales > 0)
    np.multiply(x, inv, out=q)
    np.rint(q, out=q)
    return q, scales


def int8_accumulate_into(
    q: np.ndarray,
    codes: np.ndarray,
    w_scales: np.ndarray,
    row_scales: np.ndarray,
    out: np.ndarray,
    panel_scratch: np.ndarray,
) -> np.ndarray:
    """``(q @ codes) * w_scales * row_scales`` with int32-exact accumulation.

    ``q`` holds integer-valued float32 activation codes (from
    :func:`quantize_rows_`), ``codes`` the int8 ``(K, N)`` weight codes,
    ``w_scales`` a scalar or ``(N,)`` per-channel weight scale and
    ``row_scales`` the ``(..., 1)`` activation scales.  Each ``tile``-wide
    column panel of codes is cast once into ``panel_scratch`` (float32)
    and contracted by BLAS; partial sums over K ≤ :data:`EXACT_ACCUM_K`
    are exact integers in float32 regardless of summation order, and
    deeper reductions accumulate exact chunk sums in float64, so the
    result matches :func:`int8_accumulate_reference` bit-for-bit.  The
    combined scale is applied once per output block: one per-panel
    column-scale multiply, one whole-output row-scale multiply.
    """
    k_dim, n_out = codes.shape
    tile = panel_scratch.shape[1]
    per_channel = w_scales.ndim == 1
    for begin in range(0, n_out, tile):
        end = min(begin + tile, n_out)
        panel = panel_scratch[:, : end - begin]
        np.copyto(panel, codes[:, begin:end])  # int8 -> integer-valued f32
        target = out[..., begin:end]
        if k_dim <= EXACT_ACCUM_K:
            np.matmul(q, panel, out=target)
        else:
            acc = np.zeros(target.shape, dtype=np.float64)
            for k0 in range(0, k_dim, EXACT_ACCUM_K):
                k1 = min(k0 + EXACT_ACCUM_K, k_dim)
                acc += np.matmul(q[..., k0:k1], panel[k0:k1])
            np.copyto(target, acc)  # one round-to-nearest, same as int32->f32
        target *= w_scales[begin:end] if per_channel else w_scales
    out *= row_scales
    return out


def int8_accumulate_reference(
    q: np.ndarray,
    codes: np.ndarray,
    w_scales: np.ndarray,
    row_scales: np.ndarray,
) -> np.ndarray:
    """Literal widened-integer reference for :func:`int8_accumulate_into`.

    Contracts int32 activation codes against int16 weight panels with
    NumPy's integer ``matmul`` (exact int32 accumulation), then applies
    the same two float32 scale multiplies in the same order as the fast
    engine, so the two are bit-identical.  NumPy integer matmul has no
    BLAS backend — this runs ~25x slower than the float32-BLAS engine on
    this host — which is exactly why it is the *reference*, not the
    production path.
    """
    acc = np.matmul(np.asarray(q, dtype=np.int32), codes.astype(np.int16))
    out = acc.astype(np.float32)
    out *= w_scales
    out *= row_scales
    return out
