"""Tape-free fused inference engine for the VITAL reproduction.

Training runs on the :mod:`repro.tensor` autograd tape; serving must not.
This package compiles trained models into pure-NumPy programs over flat
contiguous float32 weights:

* :class:`InferenceSession` — the dedicated ViT engine: packed Q/K/V
  matmul, LayerNorm affine folding, cached patch gather grid, preallocated
  scratch buffers, micro-batched ``predict_many``.
* :func:`compile_module` / :func:`compile_chain` — a generic compiler for
  sequential dense stacks (the neural baselines).
* :func:`run_inference_benchmark` — the latency/throughput benchmark
  recorded in ``BENCH_inference.json`` (CLI: ``repro infer-bench``).
"""

from repro.infer.benchmark import (
    REGRESSION_THRESHOLD,
    check_regression,
    format_check,
    format_summary,
    load_baseline,
    run_inference_benchmark,
    write_benchmark,
)
from repro.infer.compile import (
    AddConstant,
    CompiledModule,
    Residual,
    TokenMeanPool,
    UnsupportedModuleError,
    compile_chain,
    compile_module,
)
from repro.infer.kernels import (
    KERNELS,
    GemmPlan,
    PackedWeight,
    autotune_gemm,
    clear_plan_cache,
    gemm_into,
    resolve_kernel,
    tune_quant_tile,
)
from repro.infer.ops import MATMUL_MODES, QuantizedLinear
from repro.infer.session import (
    SNAPSHOT_FORMAT,
    InferenceSession,
    restore_session,
    snapshot_info,
)

__all__ = [
    "InferenceSession",
    "SNAPSHOT_FORMAT",
    "restore_session",
    "snapshot_info",
    "QuantizedLinear",
    "MATMUL_MODES",
    "GemmPlan",
    "PackedWeight",
    "KERNELS",
    "gemm_into",
    "autotune_gemm",
    "clear_plan_cache",
    "resolve_kernel",
    "tune_quant_tile",
    "CompiledModule",
    "UnsupportedModuleError",
    "compile_chain",
    "compile_module",
    "Residual",
    "AddConstant",
    "TokenMeanPool",
    "run_inference_benchmark",
    "write_benchmark",
    "format_summary",
    "load_baseline",
    "check_regression",
    "format_check",
    "REGRESSION_THRESHOLD",
]
