"""Minimal 2-D geometry: points, wall segments, intersection counting.

Buildings are modeled in plan view.  The only geometric question the
propagation model asks is "how many walls does the straight line from AP to
receiver cross, and of which material" — answered here with a standard
orientation-based segment-intersection test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.radio.materials import Material


@dataclass(frozen=True)
class Point:
    """A 2-D point in meters."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def __iter__(self):
        yield self.x
        yield self.y

    def midpoint(self, other: "Point") -> "Point":
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)


@dataclass(frozen=True)
class Wall:
    """A straight wall segment with a material name (see MATERIALS)."""

    start: Point
    end: Point
    material: str = "drywall"

    @property
    def length(self) -> float:
        return self.start.distance_to(self.end)


def _orientation(a: Point, b: Point, c: Point) -> int:
    """0 = collinear, 1 = clockwise, 2 = counter-clockwise."""
    cross = (b.y - a.y) * (c.x - b.x) - (b.x - a.x) * (c.y - b.y)
    if abs(cross) < 1e-12:
        return 0
    return 1 if cross > 0 else 2


def _on_segment(a: Point, b: Point, c: Point) -> bool:
    """Whether collinear point ``b`` lies within segment ``ac``."""
    return (
        min(a.x, c.x) - 1e-12 <= b.x <= max(a.x, c.x) + 1e-12
        and min(a.y, c.y) - 1e-12 <= b.y <= max(a.y, c.y) + 1e-12
    )


def segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    """True when segment p1-p2 intersects segment q1-q2 (touching counts)."""
    o1 = _orientation(p1, p2, q1)
    o2 = _orientation(p1, p2, q2)
    o3 = _orientation(q1, q2, p1)
    o4 = _orientation(q1, q2, p2)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(p1, q1, p2):
        return True
    if o2 == 0 and _on_segment(p1, q2, p2):
        return True
    if o3 == 0 and _on_segment(q1, p1, q2):
        return True
    if o4 == 0 and _on_segment(q1, p2, q2):
        return True
    return False


def count_wall_crossings(
    source: Point, target: Point, walls: Iterable[Wall]
) -> dict[str, int]:
    """Count walls crossed by the source→target ray, grouped by material."""
    crossings: dict[str, int] = {}
    for wall in walls:
        if segments_intersect(source, target, wall.start, wall.end):
            crossings[wall.material] = crossings.get(wall.material, 0) + 1
    return crossings


def polyline_points(vertices: list[Point], spacing: float = 1.0) -> list[Point]:
    """Sample points along a polyline every ``spacing`` meters.

    Used to lay out reference points along a survey path (the paper uses a
    1 m granularity).  The first vertex is always included; subsequent
    points are placed at exact multiples of ``spacing`` of path length.
    """
    if len(vertices) < 2:
        return list(vertices)
    if spacing <= 0:
        raise ValueError("spacing must be positive")

    total = sum(a.distance_to(b) for a, b in zip(vertices, vertices[1:]))
    count = int(math.floor(total / spacing + 1e-9)) + 1
    points: list[Point] = []
    for i in range(count):
        points.append(point_along_polyline(vertices, i * spacing))
    return points


def point_along_polyline(vertices: list[Point], distance: float) -> Point:
    """The point at arc-length ``distance`` along the polyline."""
    remaining = distance
    for a, b in zip(vertices, vertices[1:]):
        seg = a.distance_to(b)
        if remaining <= seg or (a, b) == (vertices[-2], vertices[-1]):
            if seg == 0:
                return a
            t = min(remaining / seg, 1.0)
            return Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
        remaining -= seg
    return vertices[-1]


def polyline_length(vertices: list[Point]) -> float:
    """Total arc length of a polyline."""
    return sum(a.distance_to(b) for a, b in zip(vertices, vertices[1:]))
