"""The :class:`Building` environment: geometry + APs + propagation.

A building owns its walls, access points, path-loss model and one
shadowing field per AP (seeded from the building seed and the AP index, so
the multipath environment is a stable property of the place, shared by all
devices — which is what makes fingerprinting possible at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.radio.access_point import AccessPoint
from repro.radio.device import NOT_VISIBLE_DBM, DeviceProfile
from repro.radio.geometry import Point, Wall, polyline_length, polyline_points
from repro.radio.propagation import LogDistanceModel, ShadowingField


@dataclass
class Building:
    """A surveyable indoor environment.

    Parameters
    ----------
    name:
        Identifier used in result tables (e.g. ``"Building 1"``).
    width_m, height_m:
        Bounding box of the plan.
    walls:
        Interior/exterior wall segments.
    access_points:
        The Wi-Fi APs whose RSSI forms the fingerprint vector; the
        fingerprint dimension equals ``len(access_points)``.
    path_vertices:
        Polyline along which reference points are laid out (Fig. 4 paths).
    propagation:
        Path-loss model; exponent varies per building.
    shadowing_sigma_db:
        Std-dev of the per-AP correlated shadowing field.  The paper calls
        Building 4 "less noisy" — its preset uses a smaller sigma.
    fast_fading_sigma_db:
        Std-dev of per-sample fading added on top of device noise.
    seed:
        Environment seed; shadowing fields derive from it.
    """

    name: str
    width_m: float
    height_m: float
    walls: list[Wall] = field(default_factory=list)
    access_points: list[AccessPoint] = field(default_factory=list)
    path_vertices: list[Point] = field(default_factory=list)
    propagation: LogDistanceModel = field(default_factory=LogDistanceModel)
    shadowing_sigma_db: float = 4.0
    shadowing_correlation_m: float = 6.0
    fast_fading_sigma_db: float = 1.5
    seed: int = 0

    def __post_init__(self):
        self._drift_db = np.zeros(self.n_aps)
        self._shadowing: dict[int, ShadowingField] = {}
        for ap in self.access_points:
            self._shadowing[ap.index] = ShadowingField(
                sigma_db=self.shadowing_sigma_db,
                correlation_m=self.shadowing_correlation_m,
                seed=(self.seed * 1_000_003 + ap.index * 7919 + 17),
            )

    # ------------------------------------------------------------------
    @property
    def n_aps(self) -> int:
        return len(self.access_points)

    @property
    def ap_macs(self) -> list[str]:
        return [ap.mac for ap in self.access_points]

    def reference_points(self, spacing_m: float = 1.0) -> list[Point]:
        """Reference points along the survey path (1 m default, as in §VI.A)."""
        return polyline_points(self.path_vertices, spacing=spacing_m)

    @property
    def path_length_m(self) -> float:
        return polyline_length(self.path_vertices)

    # ------------------------------------------------------------------
    def true_rssi(self, location: Point) -> np.ndarray:
        """Device-independent received power (dBm) from every AP.

        Values below −100 dBm are reported as −100 (no visibility), the
        same convention the paper's Fig. 1 uses.
        """
        power = np.empty(self.n_aps, dtype=np.float64)
        for i, ap in enumerate(self.access_points):
            power[i] = self.propagation.received_power_dbm(
                ap.tx_power_dbm,
                ap.position,
                location,
                walls=self.walls,
                shadowing=self._shadowing[ap.index],
            )
        power += self._drift_db
        return np.clip(power, NOT_VISIBLE_DBM, 0.0)

    def apply_environment_drift(self, sigma_db: float, seed: int = 0) -> np.ndarray:
        """Shift each AP's effective power by N(0, sigma) dB, in place.

        Models the slow environmental change between the offline survey
        and a later online phase (APs replaced/retuned, furniture moved) —
        the "dynamic environments" difficulty the paper's introduction
        raises.  Returns the per-AP drift applied; call with ``sigma_db=0``
        to reset.
        """
        if sigma_db < 0:
            raise ValueError("drift sigma must be non-negative")
        if sigma_db == 0.0:
            self._drift_db = np.zeros(self.n_aps)
        else:
            rng = np.random.default_rng([self.seed, seed, 777])
            self._drift_db = rng.normal(0.0, sigma_db, size=self.n_aps)
        return self._drift_db.copy()

    def sample_rssi(
        self,
        location: Point,
        device: DeviceProfile,
        rng: np.random.Generator,
        n_samples: int = 1,
    ) -> np.ndarray:
        """Measured fingerprints: ``(n_samples, n_aps)`` array in dBm.

        Combines the environment truth with per-sample fast fading, then
        passes the result through the device transceiver model.
        """
        truth = self.true_rssi(location)
        fading = rng.normal(0.0, self.fast_fading_sigma_db, size=(n_samples, self.n_aps))
        visible = truth > NOT_VISIBLE_DBM
        samples = np.empty((n_samples, self.n_aps), dtype=np.float64)
        for s in range(n_samples):
            faded = np.where(visible, truth + fading[s], NOT_VISIBLE_DBM)
            samples[s] = device.measure(faded, self.ap_macs, rng, n_samples=1)[0]
        return samples

    def coverage_fraction(self, location: Point) -> float:
        """Fraction of APs visible (above −100 dBm) at a location."""
        truth = self.true_rssi(location)
        return float((truth > NOT_VISIBLE_DBM).mean())

    def describe(self) -> str:
        """Human-readable summary used in benchmark headers."""
        return (
            f"{self.name}: {self.path_length_m:.0f} m path, "
            f"{len(self.reference_points())} RPs, {self.n_aps} APs, "
            f"n={self.propagation.exponent:.1f}, "
            f"shadowing {self.shadowing_sigma_db:.1f} dB"
        )
