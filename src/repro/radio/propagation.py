"""Path-loss, shadowing and fading models.

The device-independent received power at a location is::

    P_rx(d) = P_tx − PL(d0) − 10·n·log10(d/d0) − Σ wall losses + S(x, y)

where ``n`` is the building's path-loss exponent and ``S`` is a *spatially
correlated* log-normal shadowing field: nearby locations see similar
shadowing, and the field is a fixed property of (building, AP) — the same
for every device and every visit, exactly like the real multipath
environment the paper measures.  Per-sample fast fading is added separately
by the building when sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.radio.geometry import Point, count_wall_crossings
from repro.radio.materials import get_material


class ShadowingField:
    """Smooth pseudo-random field with a target standard deviation.

    Implemented as a sum of ``n_components`` random plane waves (a spectral
    / random-Fourier-feature approximation of a Gaussian process with an
    RBF-like kernel).  Deterministic given the seed, cheap to evaluate, and
    spatially correlated with length scale ``correlation_m``.
    """

    def __init__(
        self,
        sigma_db: float,
        correlation_m: float = 6.0,
        n_components: int = 24,
        seed: int = 0,
    ):
        if sigma_db < 0:
            raise ValueError("shadowing sigma must be non-negative")
        if correlation_m <= 0:
            raise ValueError("correlation length must be positive")
        self.sigma_db = sigma_db
        self.correlation_m = correlation_m
        rng = np.random.default_rng(seed)
        # Wave vectors ~ N(0, 1/l^2) gives an RBF-like spectral density.
        self._wave_vectors = rng.normal(0.0, 1.0 / correlation_m, size=(n_components, 2))
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=n_components)
        # Var[sum cos] = n/2 for unit amplitudes, so normalize amplitudes.
        self._amplitude = sigma_db * np.sqrt(2.0 / n_components)

    def __call__(self, x: float, y: float) -> float:
        """Shadowing in dB at plan position (x, y)."""
        if self.sigma_db == 0.0:
            return 0.0
        phase = self._wave_vectors @ np.array([x, y]) + self._phases
        return float(self._amplitude * np.cos(phase).sum())

    def grid(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over a meshgrid (used by visualizations)."""
        xx, yy = np.meshgrid(xs, ys)
        coords = np.stack([xx.ravel(), yy.ravel()], axis=1)
        phase = coords @ self._wave_vectors.T + self._phases
        return (self._amplitude * np.cos(phase).sum(axis=1)).reshape(xx.shape)


@dataclass
class LogDistanceModel:
    """Log-distance path loss with wall attenuation.

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n``; free space is 2.0, cluttered indoor
        offices measure 2.5-4.0.
    reference_loss_db:
        Loss at the reference distance (1 m at 2.4 GHz ≈ 40 dB).
    reference_distance_m:
        Reference distance ``d0``.
    """

    exponent: float = 3.0
    reference_loss_db: float = 40.0
    reference_distance_m: float = 1.0

    def __post_init__(self):
        if self.exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if self.reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")

    def path_loss_db(self, distance_m: float) -> float:
        """Distance-dependent loss (no walls, no shadowing)."""
        d = max(distance_m, self.reference_distance_m)
        return self.reference_loss_db + 10.0 * self.exponent * np.log10(
            d / self.reference_distance_m
        )

    def wall_loss_db(self, source: Point, target: Point, walls) -> float:
        """Total penetration loss along the direct ray."""
        crossings = count_wall_crossings(source, target, walls)
        return sum(get_material(name).loss_db * count for name, count in crossings.items())

    def received_power_dbm(
        self,
        tx_power_dbm: float,
        source: Point,
        target: Point,
        walls=(),
        shadowing: ShadowingField | None = None,
    ) -> float:
        """Device-independent received power at ``target``."""
        power = tx_power_dbm - self.path_loss_db(source.distance_to(target))
        power -= self.wall_loss_db(source, target, walls)
        if shadowing is not None:
            power += shadowing(target.x, target.y)
        return power
