"""Smartphone transceiver heterogeneity model.

Section III of the paper identifies four empirical properties of RSSI
captured by different phones at the same spot:

1. systematic deviations between devices (gain offsets),
2. similar *patterns* between some device pairs (shared slope regimes),
3. non-fixed skews even among similar pairs (per-AP antenna/channel skew),
4. APs visible to one phone but not another (sensitivity floor → the
   *missing APs* problem; invisible APs read −100 dBm).

:class:`DeviceProfile` parameterizes exactly these effects.  A measured
RSSI is produced from the true channel power as::

    measured = slope * true + offset + skew(ap) + N(0, noise)
    measured = −100           if measured < sensitivity_floor

The per-AP skew is drawn from a generator seeded by (device, AP mac), so it
is a fixed property of the device/AP pair — reproducible across visits, yet
different between devices, matching observation 3.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

NOT_VISIBLE_DBM = -100.0
MAX_RSSI_DBM = 0.0


def _stable_seed(*parts: str) -> int:
    """Deterministic 64-bit seed from string parts (process-independent)."""
    digest = hashlib.sha256("|".join(parts).encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class DeviceProfile:
    """Transceiver characteristics of one smartphone model.

    Parameters
    ----------
    name:
        Short acronym used throughout the experiments (e.g. ``"HTC"``).
    manufacturer, model, release_year:
        Catalog info mirroring the paper's Tables I and II.
    gain_offset_db:
        Systematic RSSI offset of this transceiver.
    response_slope:
        Linear gain of the RSSI response; 1.0 is a perfectly calibrated
        radio, values below/above compress/stretch dynamic range.
    per_ap_skew_db:
        Standard deviation of the fixed per-AP skew (antenna/channel
        response), the paper's "skews ... are not fixed" effect.
    noise_sigma_db:
        Per-sample measurement noise of this radio.
    sensitivity_floor_dbm:
        Weakest signal the radio reports; anything below reads −100
        ("missing AP").
    """

    name: str
    manufacturer: str = ""
    model: str = ""
    release_year: int = 0
    gain_offset_db: float = 0.0
    response_slope: float = 1.0
    per_ap_skew_db: float = 1.5
    noise_sigma_db: float = 1.0
    sensitivity_floor_dbm: float = -92.0

    def __post_init__(self):
        if self.response_slope <= 0:
            raise ValueError("response slope must be positive")
        if self.noise_sigma_db < 0:
            raise ValueError("noise sigma must be non-negative")
        if not -100.0 < self.sensitivity_floor_dbm <= 0.0:
            raise ValueError("sensitivity floor must be in (-100, 0]")

    def ap_skew(self, ap_mac: str) -> float:
        """Fixed skew (dB) this device applies to a given AP's signal."""
        rng = np.random.default_rng(_stable_seed("ap-skew", self.name, ap_mac))
        return float(rng.normal(0.0, self.per_ap_skew_db))

    def measure(
        self,
        true_rssi_dbm: np.ndarray,
        ap_macs: list[str],
        rng: np.random.Generator,
        n_samples: int = 1,
    ) -> np.ndarray:
        """Produce ``(n_samples, n_aps)`` measured RSSI from true channel power.

        ``true_rssi_dbm`` holds the device-independent received power per
        AP; entries at ``NOT_VISIBLE_DBM`` stay invisible.
        """
        true_rssi_dbm = np.asarray(true_rssi_dbm, dtype=np.float64)
        if true_rssi_dbm.ndim != 1 or len(ap_macs) != true_rssi_dbm.shape[0]:
            raise ValueError("true_rssi_dbm must be 1-D and aligned with ap_macs")
        skews = np.array([self.ap_skew(mac) for mac in ap_macs])
        base = self.response_slope * true_rssi_dbm + self.gain_offset_db + skews
        noise = rng.normal(0.0, self.noise_sigma_db, size=(n_samples, true_rssi_dbm.shape[0]))
        measured = base[None, :] + noise
        measured = np.clip(measured, NOT_VISIBLE_DBM, MAX_RSSI_DBM)
        # Sensitivity gates on the *actual* channel power: a radio whose
        # floor is above the received power cannot decode the beacon at
        # all, regardless of how its gain chain would have reported it.
        # This is what produces the paper's missing-APs phenomenon.
        undetectable = true_rssi_dbm < self.sensitivity_floor_dbm
        measured[:, undetectable] = NOT_VISIBLE_DBM
        # A radio cannot create signal out of thin air: sources that were
        # truly invisible stay invisible regardless of noise.
        source_invisible = true_rssi_dbm <= NOT_VISIBLE_DBM
        measured[:, source_invisible] = NOT_VISIBLE_DBM
        return measured

    def describe(self) -> str:
        """One-line human-readable summary (used by example scripts)."""
        return (
            f"{self.name:7s} {self.manufacturer} {self.model} ({self.release_year}): "
            f"offset {self.gain_offset_db:+.1f} dB, slope {self.response_slope:.2f}, "
            f"floor {self.sensitivity_floor_dbm:.0f} dBm, noise {self.noise_sigma_db:.1f} dB"
        )
