"""Indoor RF propagation simulator.

The paper evaluates on a private RSSI survey of four university buildings
collected with nine physical smartphones; none of that data is public, so
this package synthesizes the equivalent measurement process:

* :mod:`repro.radio.geometry` — 2-D points, wall segments, intersection
  tests used for wall-attenuation counting.
* :mod:`repro.radio.materials` — per-material penetration losses (the
  paper notes its buildings mix wood, metal and concrete).
* :mod:`repro.radio.propagation` — log-distance path loss with spatially
  correlated shadowing and per-sample fast fading.
* :mod:`repro.radio.access_point` — Wi-Fi AP with MAC id, TX power and
  channel.
* :mod:`repro.radio.device` — smartphone transceiver model: gain offset,
  response slope, per-AP antenna skew, measurement noise and a sensitivity
  floor that produces the paper's *missing APs* phenomenon.
* :mod:`repro.radio.environment` — a :class:`Building` tying it together
  and producing RSSI samples for a device at a location.

All randomness is either seeded per (building, AP) — environment properties
that must be identical across devices and visits — or drawn from an
explicit generator for per-sample effects.
"""

from repro.radio.geometry import Point, Wall, segments_intersect, count_wall_crossings
from repro.radio.materials import Material, MATERIALS
from repro.radio.propagation import LogDistanceModel, ShadowingField
from repro.radio.access_point import AccessPoint
from repro.radio.device import DeviceProfile, NOT_VISIBLE_DBM
from repro.radio.environment import Building

__all__ = [
    "Point",
    "Wall",
    "segments_intersect",
    "count_wall_crossings",
    "Material",
    "MATERIALS",
    "LogDistanceModel",
    "ShadowingField",
    "AccessPoint",
    "DeviceProfile",
    "NOT_VISIBLE_DBM",
    "Building",
]
