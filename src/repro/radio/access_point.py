"""Wi-Fi access-point model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.radio.geometry import Point


def _format_mac(index: int) -> str:
    """Deterministic, readable synthetic MAC id for AP ``index``."""
    octets = [0x80, 0x8D, 0xB7, (index >> 8) & 0xFF, index & 0xFF, (index * 37) & 0xFF]
    return ":".join(f"{o:02x}" for o in octets)


@dataclass(frozen=True)
class AccessPoint:
    """A fixed Wi-Fi transmitter inside a building.

    Parameters
    ----------
    index:
        Position of this AP in the building's fingerprint vector.
    position:
        Plan-view location in meters.
    tx_power_dbm:
        Effective isotropic radiated power; typical enterprise APs sit
        around 15-20 dBm.
    channel:
        Wi-Fi channel (1-11 for 2.4 GHz); devices exhibit slightly
        different antenna responses per channel, which feeds the per-AP
        device skew.
    mac:
        MAC identifier; auto-generated deterministically when omitted.
    """

    index: int
    position: Point
    tx_power_dbm: float = 18.0
    channel: int = 1
    mac: str = field(default="")

    def __post_init__(self):
        if not self.mac:
            object.__setattr__(self, "mac", _format_mac(self.index))
        if self.index < 0:
            raise ValueError("AP index must be non-negative")
        if not 1 <= self.channel <= 14:
            raise ValueError(f"invalid Wi-Fi channel {self.channel}")
