"""Wall materials and their Wi-Fi penetration losses.

Loss values (dB per wall at 2.4 GHz) follow the ranges commonly tabulated
in indoor-propagation literature (ITU-R P.2040 / COST 231 measurements).
The paper emphasizes that its four buildings differ in material composition
(wood, metal, concrete) — these presets let each synthetic building get a
distinct attenuation character.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Material:
    """A wall material with mean penetration loss and variability."""

    name: str
    loss_db: float
    loss_std_db: float = 0.0

    def __post_init__(self):
        if self.loss_db < 0:
            raise ValueError("penetration loss must be non-negative")


MATERIALS: dict[str, Material] = {
    "glass": Material("glass", loss_db=2.0, loss_std_db=0.5),
    "drywall": Material("drywall", loss_db=3.0, loss_std_db=0.8),
    "wood": Material("wood", loss_db=4.0, loss_std_db=1.0),
    "brick": Material("brick", loss_db=8.0, loss_std_db=1.5),
    "concrete": Material("concrete", loss_db=12.0, loss_std_db=2.0),
    "metal": Material("metal", loss_db=20.0, loss_std_db=3.0),
}


def get_material(name: str) -> Material:
    """Look up a material preset by name; raises KeyError with suggestions."""
    try:
        return MATERIALS[name]
    except KeyError:
        known = ", ".join(sorted(MATERIALS))
        raise KeyError(f"unknown material {name!r}; known materials: {known}") from None
