"""Plain-text chart primitives used by the benchmark reports."""

from __future__ import annotations

import numpy as np

_SHADES = " ░▒▓█"


def _fmt(value, width: int = 7, decimals: int = 2) -> str:
    if value is None or (isinstance(value, float) and np.isnan(value)):
        return " " * (width - 1) + "-"
    return f"{value:{width}.{decimals}f}"


def ascii_table(
    rows: list[list],
    headers: list[str],
    title: str = "",
    decimals: int = 2,
) -> str:
    """Render a fixed-width table; floats are formatted uniformly."""
    formatted: list[list[str]] = []
    for row in rows:
        formatted.append(
            [
                _fmt(cell, width=max(7, len(str(headers[k]))), decimals=decimals)
                if isinstance(cell, (int, float, np.floating)) and not isinstance(cell, bool)
                else str(cell)
                for k, cell in enumerate(row)
            ]
        )
    widths = [
        max(len(str(headers[k])), *(len(r[k]) for r in formatted)) if formatted else len(str(headers[k]))
        for k in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).rjust(widths[k]) for k, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in formatted:
        lines.append(" | ".join(row[k].rjust(widths[k]) for k in range(len(headers))))
    return "\n".join(lines)


def ascii_heatmap(
    matrix: np.ndarray,
    row_labels: list[str],
    col_labels: list[str],
    title: str = "",
    decimals: int = 2,
) -> str:
    """Numeric heatmap with Unicode shading (darker = larger value)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    finite = matrix[np.isfinite(matrix)]
    low = finite.min() if finite.size else 0.0
    high = finite.max() if finite.size else 1.0
    span = high - low if high > low else 1.0

    def shade(value: float) -> str:
        if not np.isfinite(value):
            return " "
        level = int(round((value - low) / span * (len(_SHADES) - 1)))
        return _SHADES[level]

    label_width = max((len(r) for r in row_labels), default=4)
    cell_width = max(max((len(c) for c in col_labels), default=6), decimals + 4)
    lines = []
    if title:
        lines.append(title)
    header = " " * (label_width + 1) + " ".join(c.rjust(cell_width) for c in col_labels)
    lines.append(header)
    for i, row_label in enumerate(row_labels):
        cells = []
        for j in range(len(col_labels)):
            value = matrix[i, j]
            text = _fmt(value, width=cell_width - 1, decimals=decimals).strip()
            cells.append((shade(value) + text.rjust(cell_width - 1)))
        lines.append(row_label.rjust(label_width) + " " + " ".join(cells))
    lines.append(f"(shading: light={low:.2f} … dark={high:.2f})")
    return "\n".join(lines)


def ascii_whisker(
    entries: list[tuple[str, float, float, float]],
    title: str = "",
    width: int = 52,
    unit: str = "m",
) -> str:
    """Min/mean/max whisker chart — the paper's Figs. 8/10 box plots.

    ``entries`` is a list of (label, min, mean, max).
    """
    if not entries:
        raise ValueError("no entries to plot")
    high = max(e[3] for e in entries)
    low = 0.0
    span = high - low if high > low else 1.0
    label_width = max(len(e[0]) for e in entries)

    def pos(value: float) -> int:
        return int(round((value - low) / span * (width - 1)))

    lines = []
    if title:
        lines.append(title)
    for label, v_min, v_mean, v_max in entries:
        row = [" "] * width
        a, m, b = pos(v_min), pos(v_mean), pos(v_max)
        for k in range(a, b + 1):
            row[k] = "─"
        row[a] = "├"
        row[b] = "┤"
        row[m] = "●"
        lines.append(
            f"{label.rjust(label_width)} |{''.join(row)}| "
            f"min={v_min:.2f} mean={v_mean:.2f} max={v_max:.2f} {unit}"
        )
    lines.append(f"{' ' * label_width}  0{' ' * (width - 8)}{high:6.2f} {unit}")
    return "\n".join(lines)


def ascii_slope(
    entries: list[tuple[str, float, float]],
    left_label: str = "w/o DAM",
    right_label: str = "w/ DAM",
    title: str = "",
) -> str:
    """Two-column slope graph — the paper's Fig. 9 DAM ablation."""
    if not entries:
        raise ValueError("no entries to plot")
    label_width = max(len(e[0]) for e in entries)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{' ' * label_width} {left_label:>8}      {right_label:>8}")
    for label, before, after in entries:
        arrow = "↘" if after < before - 1e-9 else ("↗" if after > before + 1e-9 else "→")
        delta = after - before
        lines.append(
            f"{label.rjust(label_width)} {before:8.2f}  {arrow}  {after:8.2f}   "
            f"({delta:+.2f} m)"
        )
    return "\n".join(lines)


def ascii_bar(
    entries: list[tuple[str, float]],
    title: str = "",
    width: int = 48,
    unit: str = "m",
) -> str:
    """Horizontal bar chart."""
    if not entries:
        raise ValueError("no entries to plot")
    high = max(v for _label, v in entries)
    scale = (width - 1) / high if high > 0 else 1.0
    label_width = max(len(e[0]) for e in entries)
    lines = []
    if title:
        lines.append(title)
    for label, value in entries:
        bar = "█" * max(1, int(round(value * scale)))
        lines.append(f"{label.rjust(label_width)} |{bar} {value:.2f} {unit}")
    return "\n".join(lines)


def ascii_series(
    series: dict[str, np.ndarray],
    x_labels: list[str] | None = None,
    title: str = "",
    height: int = 12,
    y_label: str = "",
) -> str:
    """Multi-series line chart on a character grid (used for Fig. 1)."""
    if not series:
        raise ValueError("no series to plot")
    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    length = max(len(v) for v in arrays.values())
    low = min(v.min() for v in arrays.values())
    high = max(v.max() for v in arrays.values())
    span = high - low if high > low else 1.0
    width = length * 3
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    for s_idx, (name, values) in enumerate(arrays.items()):
        marker = markers[s_idx % len(markers)]
        legend.append(f"{marker}={name}")
        for i, value in enumerate(values):
            row = int(round((high - value) / span * (height - 1)))
            col = min(i * 3 + 1, width - 1)
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{high:8.1f} ┐" if not y_label else f"{y_label} (top={high:.1f})")
    for row in grid:
        lines.append("         |" + "".join(row))
    lines.append(f"{low:8.1f} ┘")
    if x_labels:
        lines.append("          " + "".join(label[:2].ljust(3) for label in x_labels))
    lines.append("legend: " + "  ".join(legend))
    return "\n".join(lines)
