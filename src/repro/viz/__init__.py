"""Terminal (ASCII/Unicode) visualization of the paper's figures.

No plotting backend is available offline, so the benchmark harnesses
render every figure as text: line charts for the Fig. 1 RSSI comparison,
shaded heatmaps for Figs. 6/7, whisker charts for the Figs. 8/10 box
plots, slope graphs for Fig. 9 and surface tables for Fig. 5.
"""

from repro.viz.ascii_plots import (
    ascii_table,
    ascii_heatmap,
    ascii_whisker,
    ascii_slope,
    ascii_bar,
    ascii_series,
)

__all__ = [
    "ascii_table",
    "ascii_heatmap",
    "ascii_whisker",
    "ascii_slope",
    "ascii_bar",
    "ascii_series",
]
