"""Quantization trade-off benchmark: accuracy vs latency vs footprint.

Two experiment groups, recorded under the ``quantization`` section of
``BENCH_inference.json`` (schema ``repro.infer.bench.v3``):

* **engine** — the fused ViT engine at the benchmark geometry: pickled
  snapshot bytes (float32 vs per-tensor int8 vs per-channel int8),
  resident weight bytes per execution mode, logit fidelity against the
  float32 engine (dequant lane, plus the int8-accumulate engine's
  ``accumulate_fidelity``), and single-sample p50 latency for every
  scheme × mode lane — int8-resident mode is measured under both matmul
  engines (``dequant_tile`` and ``int8_accumulate``).
* **accuracy** — a small fixed-seed synthetic survey: VITAL trained end
  to end, served float32 / per-tensor int8 / per-channel int8 (plus a
  per-channel arm served through the int8-accumulate engine, held to
  the same accuracy-delta gate), mean localization error per arm; plus
  the dense baselines (SHERPA, CNNLoc) fake-quantized through
  :func:`repro.nn.quantize_model` at both granularities.

Run via ``benchmarks/bench_quantization.py [--smoke]`` or the
``repro quantize`` CLI's ``--bench`` companion lane.
"""

from __future__ import annotations

import pickle
import time

import numpy as np

from repro.infer.session import InferenceSession
from repro.nn.quantization import model_size_bytes, quantize_model
from repro.quant.calibrate import calibrate_session
from repro.quant.session import SCHEMES, QuantizedSession, _state_weight_bytes


def _p50_ms(fn, iterations: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(iterations):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return float(np.percentile(samples, 50))


def _engine_experiment(
    image_size: int, num_classes: int, max_batch: int, seed: int, smoke: bool
) -> dict:
    """Fidelity / latency / footprint of the quantized fused engine."""
    from repro.vit.config import VitalConfig
    from repro.vit.model import VitalModel

    iters = 10 if smoke else 100
    eval_samples = 2 * max_batch if smoke else 8 * max_batch
    calibration_samples = 16 if smoke else 64

    rng = np.random.default_rng(seed)
    model = VitalModel(
        VitalConfig.fast(image_size),
        image_size=image_size,
        channels=3,
        num_classes=num_classes,
        rng=rng,
    )
    session = InferenceSession(model, max_batch=max_batch)
    calibration_images = rng.standard_normal(
        (calibration_samples, image_size, image_size, 3)
    ).astype(np.float32)
    eval_images = rng.standard_normal(
        (eval_samples, image_size, image_size, 3)
    ).astype(np.float32)
    single = eval_images[:1]

    calibration = calibrate_session(session, calibration_images)
    reference = session.predict_many(eval_images)
    float_snapshot_bytes = len(pickle.dumps(session.snapshot()))

    snapshot_bytes = {"float32": float_snapshot_bytes}
    resident_bytes = {"float32": _state_weight_bytes(session.__getstate__())}
    fidelity: dict[str, dict] = {}
    accumulate_fidelity: dict[str, dict] = {}
    latency = {"float32_p50_ms": _p50_ms(lambda: session.predict(single), iters)}

    def _fidelity(logits: np.ndarray) -> dict:
        return {
            "max_abs_diff": float(np.abs(logits - reference).max()),
            "argmax_agreement": float(
                (logits.argmax(axis=1) == reference.argmax(axis=1)).mean()
            ),
        }

    for scheme in SCHEMES:
        # int8-resident mode is measured under both matmul engines; the
        # lineage lane name `{scheme}_int8` keeps meaning "int8-resident
        # weights, exact float activations" (now the tuned dequant-tile
        # engine), `{scheme}_int8_accumulate` is the integer-arithmetic
        # engine with dynamic activation quantization.
        sessions = {
            "dequant": QuantizedSession(
                session, scheme=scheme, mode="dequant", calibration=calibration
            ),
            "int8": QuantizedSession(
                session, scheme=scheme, mode="int8", matmul="dequant_tile",
                calibration=calibration,
            ),
            "int8_accumulate": QuantizedSession(
                session, scheme=scheme, mode="int8", matmul="int8_accumulate",
                calibration=calibration,
            ),
        }
        snapshot_bytes[scheme] = len(pickle.dumps(sessions["dequant"].snapshot()))
        resident_bytes[f"{scheme}_int8_mode"] = sessions["int8"].resident_weight_bytes()
        fidelity[scheme] = _fidelity(sessions["dequant"].predict_many(eval_images))
        accumulate_fidelity[scheme] = _fidelity(
            sessions["int8_accumulate"].predict_many(eval_images)
        )
        for mode, quantized in sessions.items():
            latency[f"{scheme}_{mode}_p50_ms"] = _p50_ms(
                lambda q=quantized: q.predict(single), iters
            )

    return {
        "snapshot_bytes": snapshot_bytes,
        "snapshot_ratio_per_channel": snapshot_bytes["per_channel"] / float_snapshot_bytes,
        "resident_weight_bytes": resident_bytes,
        "fidelity": fidelity,
        "accumulate_fidelity": accumulate_fidelity,
        "latency": latency,
        "calibration": calibration.summary(),
        "eval_samples": eval_samples,
        "single_iters": iters,
    }


def _mean_error_m(localizer, test) -> float:
    return float(localizer.errors_m(test).mean())


def _quantized_arm_errors(localizer, test, quantize_fn) -> dict[str, float]:
    """Mean error per scheme with the network fake-quantized in place.

    ``quantize_fn(scheme)`` must quantize the live network; weights are
    restored from a float32 checkpoint between arms.
    """
    network = localizer.network
    checkpoint = {name: values.copy() for name, values in network.state_dict().items()}
    errors = {}
    for scheme in SCHEMES:
        quantize_fn(scheme)
        errors[scheme] = _mean_error_m(localizer, test)
        network.load_state_dict(checkpoint)
    return errors


def _accuracy_experiment(seed: int, smoke: bool, verbose: bool) -> dict:
    """Localization error of quantized arms on a fixed-seed tiny survey."""
    from repro.baselines.cnnloc import CnnLocLocalizer
    from repro.baselines.sherpa import SherpaLocalizer
    from repro.data import BASE_DEVICES, SurveyConfig, collect_fingerprints
    from repro.data.buildings import make_building_1
    from repro.data.splits import train_test_split
    from repro.vit.config import VitalConfig
    from repro.vit.localizer import VitalLocalizer

    def log(message: str) -> None:
        if verbose:
            print(message, flush=True)

    building = make_building_1(n_aps=10)
    dataset = collect_fingerprints(
        building, BASE_DEVICES[:3], SurveyConfig(n_visits=1, seed=seed)
    )
    train, test = train_test_split(dataset, test_fraction=0.2, seed=seed)

    vital_epochs = 2 if smoke else 80
    record: dict[str, dict] = {}

    # --- VITAL through the quantized fused engine
    log(f"  training VITAL ({vital_epochs} epochs) on the synthetic survey...")
    vital = VitalLocalizer(VitalConfig.fast(12, epochs=vital_epochs), seed=seed)
    vital.fit(train)
    float_session = vital.compile_inference(max_batch=32)
    calibration_images = vital.dam.process(
        train.features, training=False, as_image=True
    )
    calibration = calibrate_session(float_session, calibration_images[:64])
    float_error = _mean_error_m(vital, test)
    vital_errors = {}
    for scheme in SCHEMES:
        vital._session = QuantizedSession(
            float_session, scheme=scheme, mode="dequant", calibration=calibration
        )
        vital_errors[scheme] = _mean_error_m(vital, test)
    # Extra arm: the headline per-channel scheme served int8-resident
    # through the int8-accumulate engine, held to the same delta gate.
    vital._session = QuantizedSession(
        float_session, scheme="per_channel", mode="int8",
        matmul="int8_accumulate", calibration=calibration,
    )
    accumulate_error = _mean_error_m(vital, test)
    vital._session = float_session
    record["VITAL"] = {
        "float32_mean_error_m": float_error,
        **{f"{scheme}_mean_error_m": err for scheme, err in vital_errors.items()},
        **{f"{scheme}_delta_m": err - float_error
           for scheme, err in vital_errors.items()},
        "per_channel_int8_accumulate_mean_error_m": accumulate_error,
        "per_channel_int8_accumulate_delta_m": accumulate_error - float_error,
        "served_via": "QuantizedSession (dequant mode, calibrated; "
                      "plus one per-channel int8-accumulate arm)",
    }
    log(f"  VITAL: float {float_error:.2f} m, per-channel int8 "
        f"{vital_errors['per_channel']:.2f} m, int8-accumulate "
        f"{accumulate_error:.2f} m")

    # --- dense baselines via fake-quantized weights on the compiled path
    baselines = {
        "SHERPA": lambda: SherpaLocalizer(epochs=2 if smoke else 10, seed=seed),
        "CNNLoc": lambda: CnnLocLocalizer(
            epochs=4 if smoke else 30, sae_epochs=2 if smoke else 10, seed=seed
        ),
    }
    for name, factory in baselines.items():
        localizer = factory().fit(train)
        float_error = _mean_error_m(localizer, test)
        errors = _quantized_arm_errors(
            localizer, test,
            lambda scheme, loc=localizer: quantize_model(
                loc.network, bits=8, scheme=scheme
            ),
        )
        record[name] = {
            "float32_mean_error_m": float_error,
            **{f"{scheme}_mean_error_m": err for scheme, err in errors.items()},
            **{f"{scheme}_delta_m": err - float_error
               for scheme, err in errors.items()},
            "footprint_bytes": {
                "float32": model_size_bytes(localizer.network, bits=32),
                "int8": model_size_bytes(localizer.network, bits=8),
            },
        }
        log(f"  {name}: float {float_error:.2f} m, per-channel int8 "
            f"{errors['per_channel']:.2f} m")

    return {
        "survey": {"building": 1, "n_aps": 10, "devices": 3,
                   "records": len(dataset), "test_fraction": 0.2},
        "vital_epochs": vital_epochs,
        "frameworks": record,
    }


def run_quantization_benchmark(
    image_size: int = 24,
    num_classes: int = 32,
    max_batch: int = 32,
    seed: int = 0,
    smoke: bool = False,
    verbose: bool = True,
) -> dict:
    """Run both experiment groups; returns the ``quantization`` record."""

    def log(message: str) -> None:
        if verbose:
            print(message, flush=True)

    log("engine experiment (fidelity / latency / footprint)...")
    engine = _engine_experiment(image_size, num_classes, max_batch, seed, smoke)
    log("accuracy experiment (synthetic survey)...")
    accuracy = _accuracy_experiment(seed, smoke, verbose)
    return {
        "config": {
            "image_size": image_size,
            "num_classes": num_classes,
            "max_batch": max_batch,
            "seed": seed,
            "smoke": smoke,
        },
        "engine": engine,
        "accuracy": accuracy,
    }


def attach_quantization_section(result: dict, quantization: dict) -> dict:
    """Merge a quantization record into an inference-benchmark record.

    Bumps the schema to the current :data:`repro.infer.benchmark.SCHEMA`
    (v3; the ``quantization`` section is what v2 added over v1, and
    ``infer-bench`` itself records the v3 ``kernels`` section).
    """
    from repro.infer.benchmark import SCHEMA

    merged = dict(result)
    merged["schema"] = SCHEMA
    merged["quantization"] = quantization
    return merged


def format_quantization_summary(record: dict) -> str:
    """Human-readable summary of a quantization benchmark record."""
    engine = record["engine"]
    ratio = record["engine"]["snapshot_ratio_per_channel"]
    lines = [
        "quantization benchmark "
        f"(image={record['config']['image_size']}, "
        f"smoke={record['config']['smoke']})",
        "  snapshot bytes: "
        + " | ".join(
            f"{name} {engine['snapshot_bytes'][name]:,}"
            for name in ("float32", "per_tensor", "per_channel")
        )
        + f"  (per-channel = {ratio:.1%} of float32)",
        "  single-sample p50: "
        + " | ".join(
            f"{lane.removesuffix('_p50_ms')} {value:.3f} ms"
            for lane, value in engine["latency"].items()
        ),
    ]
    for scheme in SCHEMES:
        fidelity = engine["fidelity"][scheme]
        lines.append(
            f"  fidelity[{scheme}]: max|Δlogit| {fidelity['max_abs_diff']:.2e}, "
            f"argmax agreement {fidelity['argmax_agreement']:.1%}"
        )
        accumulate = engine.get("accumulate_fidelity", {}).get(scheme)
        if accumulate is not None:
            lines.append(
                f"  fidelity[{scheme}, int8-accumulate]: "
                f"max|Δlogit| {accumulate['max_abs_diff']:.2e}, "
                f"argmax agreement {accumulate['argmax_agreement']:.1%}"
            )
    frameworks = record["accuracy"]["frameworks"]
    for name, row in frameworks.items():
        lines.append(
            f"  {name}: float {row['float32_mean_error_m']:.2f} m | "
            f"per-tensor {row['per_tensor_mean_error_m']:.2f} m | "
            f"per-channel {row['per_channel_mean_error_m']:.2f} m "
            f"(Δ {row['per_channel_delta_m']:+.3f} m)"
        )
        if "per_channel_int8_accumulate_delta_m" in row:
            lines.append(
                f"    int8-accumulate arm: "
                f"{row['per_channel_int8_accumulate_mean_error_m']:.2f} m "
                f"(Δ {row['per_channel_int8_accumulate_delta_m']:+.3f} m)"
            )
    return "\n".join(lines)
