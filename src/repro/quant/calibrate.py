"""Calibration: run representative fingerprint images through the engine.

Post-training weight quantization itself is data-free (the scales come
from the weight tensors), but a deployment should never ship a quantized
model blind.  :func:`calibrate_session` drives a batch of representative
RSSI images through the compiled float32 engine and records the absolute
activation peak at every matmul input — the patch gather, the token
stream entering each encoder block, the encoder output, the pooled head
input and the logits.
The resulting :class:`Calibration` is embedded in the quantized snapshot
and reported by the quantization benchmark, so the int8 deployment
carries evidence of the activation ranges it was validated on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.infer.ops import dense_, gelu_, layer_norm_
from repro.infer.session import InferenceSession


@dataclass
class Calibration:
    """Activation-range evidence gathered from representative images."""

    samples: int
    activation_peaks: dict[str, float] = field(default_factory=dict)

    def summary(self) -> dict:
        """JSON-serializable record embedded in snapshots and benchmarks."""
        return {
            "samples": self.samples,
            "activation_peaks": {
                name: float(peak) for name, peak in self.activation_peaks.items()
            },
        }

    def __repr__(self) -> str:
        peak = max(self.activation_peaks.values(), default=0.0)
        return (
            f"Calibration(samples={self.samples}, "
            f"sites={len(self.activation_peaks)}, max_peak={peak:.3g})"
        )


def calibrate_session(
    session: InferenceSession, images, max_batch: int | None = None
) -> Calibration:
    """Run ``images`` through ``session`` recording per-site activation peaks.

    Uses the session's own compiled blocks (the exact kernels the
    quantized engine reuses), chunked through its scratch buffers like
    ``predict_many``.
    """
    x = session._coerce(images)
    if len(x) == 0:
        raise ValueError("calibration needs at least one image")
    chunk = min(session.max_batch, max_batch or session.max_batch)
    peaks: dict[str, float] = {}

    def observe(name: str, values: np.ndarray) -> None:
        peak = float(np.abs(values).max()) if values.size else 0.0
        peaks[name] = max(peaks.get(name, 0.0), peak)

    for begin in range(0, len(x), chunk):
        batch = x[begin : begin + chunk]
        b = len(batch)
        flat = batch.reshape(b, -1)
        patches = np.take(flat, session.patch_grid, axis=1).astype(np.float32)
        observe("patches", patches)

        tokens = np.empty((b, session.num_patches, session.w_embed.shape[1]),
                          dtype=np.float32)
        dense_(patches, session.w_embed, None, out=tokens)
        tokens += session.pos_bias
        out = tokens
        for index, block in enumerate(session.blocks):
            observe(f"block_{index}_tokens", out)
            out = block.run(out)
        observe("encoder_out", out)

        normed = np.empty_like(out)
        layer_norm_(out, session.eps_final, out=normed)
        pooled = normed.mean(axis=1)
        observe("pooled", pooled)
        x2d = pooled
        for index, (w, bias) in enumerate(session.head_weights):
            target = np.empty((b, w.shape[1]), dtype=np.float32)
            dense_(x2d, w, bias, out=target)
            if index < len(session.head_weights) - 1:
                gelu_(target, np.empty_like(target))
            x2d = target
        observe("logits", x2d)

    return Calibration(samples=len(x), activation_peaks=peaks)
