"""Quantized execution of the fused inference engine.

A :class:`QuantizedSession` takes a compiled float32
:class:`repro.infer.InferenceSession` (or a trained ``VitalModel``) and
re-expresses every packed matmul weight — the per-block QKV pack, the
attention output projection, the encoder MLP, the patch embedding and the
head denses — as int8 codes plus scales:

* ``scheme="per_channel"`` (default) gives every output channel of each
  weight its own scale (:func:`repro.nn.quantize_tensor_per_channel`);
  ``scheme="per_tensor"`` keeps the classic single-scale path.
* ``mode="dequant"`` decodes the weights back to float32 once at session
  build — zero steady-state overhead, identical kernels to the float
  engine; ``mode="int8"`` keeps the weights int8-resident and lets
  :func:`repro.infer.ops.dense_` dequantize tile-by-tile inside each
  matmul (:class:`repro.infer.QuantizedLinear`), cutting the resident
  weight footprint ~4x.

Biases, the fused position-embedding add and the LayerNorm epsilons stay
float32 — they are a rounding-error fraction of the footprint and
quantizing them buys nothing.

Either mode snapshots to the same int8 wire format
(:data:`QUANT_SNAPSHOT_FORMAT`): ``snapshot()`` ships codes + scales, so
seeding :class:`repro.serve.LocalizationServer` workers costs ~4x fewer
pickled bytes than a float32 snapshot, and ``from_snapshot`` rebuilds a
serving-ready session without ever materializing the original model.
"""

from __future__ import annotations

import numpy as np

from repro.infer.kernels import tune_quant_tile
from repro.infer.ops import MATMUL_MODES, QuantizedLinear
from repro.infer.session import (
    InferenceSession,
    _BlockProgram,
    _validate_max_batch,
    _validate_state,
)
from repro.nn.quantization import quantize_tensor, quantize_tensor_per_channel
from repro.quant.calibrate import Calibration, calibrate_session

#: Version tag of the quantized snapshot wire format.
QUANT_SNAPSHOT_FORMAT = "repro.quant.session/v1"

#: Weight-scale granularities.
SCHEMES = ("per_tensor", "per_channel")

#: Execution modes: decode once at build vs. int8-resident tiled decode.
MODES = ("dequant", "int8")

#: Matmul engines of the int8-resident mode (see
#: :data:`repro.infer.ops.MATMUL_MODES`): ``"int8_accumulate"`` quantizes
#: activations on the fly and accumulates int8 x int8 products exactly;
#: ``"dequant_tile"`` is the PR-3 decode-per-tile fallback.  ``"auto"``
#: resolves to the accumulate engine.
MATMULS = ("auto",) + MATMUL_MODES


def _quantize_weight(weight: np.ndarray, scheme: str, bits: int) -> QuantizedLinear:
    """One compiled (in, out) weight matrix → int8 codes + scale(s)."""
    if scheme == "per_channel":
        codes, scales = quantize_tensor_per_channel(weight, axis=-1, bits=bits)
    else:
        codes, scales = quantize_tensor(weight, bits=bits)
    return QuantizedLinear(codes, scales)


def _quantize_state(state: dict, scheme: str, bits: int) -> dict:
    """Session state → the same structure with int8 weights.

    Blocks are stored as their plain ``__getstate__`` dicts so the
    snapshot pickles without any scratch machinery; biases stay float32.
    """
    qstate = dict(state)
    # Flat pixel indices are < image_size**2 * channels, so int32 is a
    # lossless halving of the gather grid's wire size.
    qstate["patch_grid"] = np.ascontiguousarray(state["patch_grid"], dtype=np.int32)
    qstate["w_embed"] = _quantize_weight(state["w_embed"], scheme, bits)
    qblocks = []
    for block in state["blocks"]:
        data = dict(block.__getstate__())
        data["w_qkv"] = _quantize_weight(data["w_qkv"], scheme, bits)
        data["w_out"] = _quantize_weight(data["w_out"], scheme, bits)
        data["mlp_weights"] = [
            (_quantize_weight(w, scheme, bits), bias)
            for w, bias in data["mlp_weights"]
        ]
        qblocks.append(data)
    qstate["blocks"] = qblocks
    qstate["head_weights"] = [
        (_quantize_weight(w, scheme, bits), bias)
        for w, bias in state["head_weights"]
    ]
    return qstate


def _executable_state(qstate: dict, mode: str, max_batch: int | None) -> dict:
    """Quantized state → the state the engine actually runs on.

    ``dequant`` materializes every :class:`QuantizedLinear` to float32;
    ``int8`` wires the quantized objects straight into the blocks (the
    ``dense_`` kernel dispatches on the weight type).
    """

    def resolve(weight):
        if mode == "dequant" and isinstance(weight, QuantizedLinear):
            return weight.materialize()
        return weight

    state = dict(qstate)
    if max_batch is not None:
        state["max_batch"] = _validate_max_batch(max_batch)
    state["w_embed"] = resolve(qstate["w_embed"])
    blocks = []
    for data in qstate["blocks"]:
        data = dict(data)
        data["w_qkv"] = resolve(data["w_qkv"])
        data["w_out"] = resolve(data["w_out"])
        data["mlp_weights"] = [(resolve(w), bias) for w, bias in data["mlp_weights"]]
        if max_batch is not None:
            data["_max_batch"] = state["max_batch"]
        block = _BlockProgram.__new__(_BlockProgram)
        block.__setstate__(data)
        blocks.append(block)
    state["blocks"] = blocks
    state["head_weights"] = [(resolve(w), bias) for w, bias in qstate["head_weights"]]
    return state


def _iter_weight_arrays(state: dict):
    """Every weight/bias array (or QuantizedLinear) of a session state."""
    yield state["w_embed"]
    yield state["pos_bias"]
    for block in state["blocks"]:
        data = block if isinstance(block, dict) else block.__getstate__()
        yield data["w_qkv"]
        yield data["b_qkv"]
        yield data["w_out"]
        yield data["b_out"]
        for w, bias in data["mlp_weights"]:
            yield w
            if bias is not None:
                yield bias
    for w, bias in state["head_weights"]:
        yield w
        if bias is not None:
            yield bias


def _state_weight_bytes(state: dict) -> int:
    return int(sum(arr.nbytes for arr in _iter_weight_arrays(state)))


class QuantizedSession(InferenceSession):
    """The fused ViT engine running on calibrated int8 weights.

    Parameters
    ----------
    source:
        A compiled float32 :class:`InferenceSession` or a trained
        ``VitalModel`` (compiled on the fly).
    scheme:
        ``"per_channel"`` (default) or ``"per_tensor"`` weight scales.
    mode:
        ``"dequant"`` — decode to float32 at build, zero steady-state
        overhead; ``"int8"`` — int8-resident weights, per-tile decode
        inside the packed matmuls.
    bits:
        Code width, 2..8 (codes ship as int8 either way).
    matmul:
        Matmul engine of the int8-resident mode: ``"int8_accumulate"``
        (dynamic per-row activation quantization, int32-exact code-vs-code
        contraction), ``"dequant_tile"`` (the PR-3 decode-per-tile
        fallback) or ``"auto"`` (the accumulate engine).  Ignored by
        ``mode="dequant"``, which runs plain float32 kernels.
    calibration / calibration_images:
        Either a ready :class:`repro.quant.Calibration` or a batch of
        representative images to run through the float engine before
        quantizing; the evidence is embedded in every snapshot.
    """

    def __init__(
        self,
        source,
        scheme: str = "per_channel",
        mode: str = "dequant",
        bits: int = 8,
        max_batch: int | None = None,
        matmul: str = "auto",
        calibration: Calibration | dict | None = None,
        calibration_images=None,
    ):
        if isinstance(source, QuantizedSession):
            raise TypeError(
                "source is already a QuantizedSession; re-quantizing "
                "quantized weights would compound rounding (build from the "
                "float32 session or model instead)"
            )
        if not 2 <= bits <= 8:
            raise ValueError(f"bits must be in [2, 8] for int8 codes, got {bits}")
        if isinstance(source, InferenceSession):
            base = source
        else:
            base = InferenceSession(source, max_batch=max_batch or 32)
        if calibration is None and calibration_images is not None:
            calibration = calibrate_session(base, calibration_images)
        self._install(
            _quantize_state(base.__getstate__(), _check_scheme(scheme), bits),
            scheme=scheme,
            mode=mode,
            bits=bits,
            matmul=matmul,
            calibration=calibration,
            max_batch=max_batch,
        )

    # ------------------------------------------------------------------
    def _install(
        self,
        qstate: dict,
        scheme: str,
        mode: str,
        bits: int,
        calibration,
        matmul: str = "auto",
        max_batch: int | None = None,
    ) -> None:
        """Wire quantized state + metadata into a runnable session."""
        self.scheme = _check_scheme(scheme)
        self.mode = _check_mode(mode)
        self.bits = int(bits)
        self.matmul = _check_matmul(matmul)
        if isinstance(calibration, Calibration):
            calibration = calibration.summary()
        self.calibration = calibration
        self._qstate = qstate
        InferenceSession.__setstate__(self, _executable_state(qstate, mode, max_batch))
        if self.mode == "int8":
            self._bind_matmul()

    def _bind_matmul(self) -> None:
        """Point every resident :class:`QuantizedLinear` at the configured
        matmul engine, and — under the blocked kernel — widen its decode
        panel to the tuned cache-resident width (the naive kernel keeps
        the fixed PR-3 tile so ``--kernel naive`` reproduces the old
        baseline exactly)."""
        for weight in _iter_weight_arrays(InferenceSession.__getstate__(self)):
            if isinstance(weight, QuantizedLinear):
                weight.matmul_mode = self.matmul
                if self.kernel == "blocked":
                    weight.tile = tune_quant_tile(*weight.shape)

    # -- snapshot / restore -------------------------------------------
    def snapshot(self) -> dict:
        """Int8 snapshot: codes + scales + float biases + geometry.

        ~4x fewer pickled bytes than the float32
        :meth:`InferenceSession.snapshot`, which is exactly what crosses
        the ``multiprocessing`` queues when a
        :class:`repro.serve.LocalizationServer` seeds its workers.
        """
        return {
            "format": QUANT_SNAPSHOT_FORMAT,
            "scheme": self.scheme,
            "mode": self.mode,
            "bits": self.bits,
            "matmul": self.matmul,
            "calibration": self.calibration,
            "state": self._qstate,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict, mode: str | None = None,
                      matmul: str | None = None) -> "QuantizedSession":
        """Rebuild from :meth:`snapshot`; ``mode`` / ``matmul`` optionally
        override the recorded execution mode and matmul engine (the wire
        format is identical for all of them).  Pre-kernel-layer snapshots
        carry no matmul entry and restore onto the dequant-tile engine,
        preserving their recorded numerics."""
        if not isinstance(snapshot, dict) or snapshot.get("format") != QUANT_SNAPSHOT_FORMAT:
            raise ValueError(
                f"not a QuantizedSession snapshot (expected format "
                f"{QUANT_SNAPSHOT_FORMAT!r}, got "
                f"{snapshot.get('format') if isinstance(snapshot, dict) else snapshot!r})"
            )
        session = cls.__new__(cls)
        session._install(
            _validate_state(snapshot.get("state"), QUANT_SNAPSHOT_FORMAT),
            scheme=snapshot["scheme"],
            mode=mode or snapshot["mode"],
            bits=snapshot["bits"],
            matmul=matmul or snapshot.get("matmul", "dequant_tile"),
            calibration=snapshot.get("calibration"),
        )
        return session

    def __getstate__(self) -> dict:
        # Direct pickles ship the compact quantized state, not the
        # (possibly materialized float32) execution arrays.
        return {
            "qstate": self._qstate,
            "scheme": self.scheme,
            "mode": self.mode,
            "bits": self.bits,
            "matmul": self.matmul,
            "calibration": self.calibration,
        }

    def __setstate__(self, state: dict) -> None:
        self._install(
            state["qstate"],
            scheme=state["scheme"],
            mode=state["mode"],
            bits=state["bits"],
            matmul=state.get("matmul", "dequant_tile"),
            calibration=state.get("calibration"),
        )

    # -- metadata ------------------------------------------------------
    def info(self) -> dict:
        """Snapshot metadata (geometry + scheme/mode/bits) — what the
        :mod:`repro.fleet` registry records in a version manifest."""
        from repro.infer.session import snapshot_info

        return snapshot_info(self.snapshot())

    def gemm_sites(self) -> list[dict]:
        """Base sites plus the quantization view: which matmul engine an
        int8-resident site runs (``int8_accumulate``/``dequant_tile``)
        and the session's scheme/mode — so profiling output names the
        exact kernel each shape executes."""
        sites = super().gemm_sites()
        for site in sites:
            site["scheme"] = self.scheme
            site["mode"] = self.mode
            site["engine"] = self.matmul if site["weight"] == "int8" else None
        return sites

    # -- footprint accounting -----------------------------------------
    def quantized_weight_bytes(self) -> int:
        """Bytes of the quantized weight payload (what a snapshot ships)."""
        return _state_weight_bytes(self._qstate)

    def resident_weight_bytes(self) -> int:
        """Bytes of the weights this session actually holds in memory.

        ``int8`` mode holds only the int8 codes (the execution state and
        the snapshot state share the same :class:`QuantizedLinear`
        objects).  ``dequant`` mode holds the materialized float32 arrays
        *plus* the retained codes — the codes stay resident so
        :meth:`snapshot` can re-ship the compact wire format (which the
        serving layer relies on when re-seeding workers), making dequant a
        latency choice, not a memory saving.
        """
        resident = _state_weight_bytes(InferenceSession.__getstate__(self))
        if self.mode == "dequant":
            resident += self.quantized_weight_bytes()
        return resident

    def __repr__(self) -> str:
        return (
            f"QuantizedSession(image={self.image_size}, "
            f"blocks={len(self.blocks)}, classes={self.num_classes}, "
            f"scheme={self.scheme}, mode={self.mode}, bits={self.bits}, "
            f"matmul={self.matmul}, max_batch={self.max_batch})"
        )


def _check_scheme(scheme: str) -> str:
    if scheme not in SCHEMES:
        raise ValueError(f"scheme must be one of {SCHEMES}, got {scheme!r}")
    return scheme


def _check_mode(mode: str) -> str:
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    return mode


def _check_matmul(matmul: str) -> str:
    if matmul not in MATMULS:
        raise ValueError(f"matmul must be one of {MATMULS}, got {matmul!r}")
    return "int8_accumulate" if matmul == "auto" else matmul


def quantize_session(
    source,
    scheme: str = "per_channel",
    mode: str = "dequant",
    bits: int = 8,
    matmul: str = "auto",
    calibration_images=None,
    max_batch: int | None = None,
) -> QuantizedSession:
    """Calibrate (when images are given) and quantize in one call."""
    return QuantizedSession(
        source,
        scheme=scheme,
        mode=mode,
        bits=bits,
        matmul=matmul,
        max_batch=max_batch,
        calibration_images=calibration_images,
    )
