"""Calibrated int8 quantization for the VITAL serving stack.

The paper's deployment argument — localization models must run on
"memory-constrained and computationally limited embedded and IoT
platforms" — needs more than an int8 state dict: the quantized weights
must *execute* and *ship*.  This package closes the gap between
:mod:`repro.nn.quantization` (codes + scales) and the serving layer:

* :func:`calibrate_session` — run representative fingerprint images
  through the compiled float32 engine, recording per-site activation
  peaks (:class:`Calibration`, embedded in every quantized snapshot);
* :class:`QuantizedSession` — the fused ViT engine on int8 weights, with
  per-channel (default) or per-tensor scales and two execution modes:
  ``dequant`` (decode once at build, zero steady-state overhead) and
  ``int8`` (int8-resident weights, tile-wise decode inside the packed
  matmuls, ~4x smaller resident footprint);
* quantized ``snapshot()`` / ``from_snapshot()`` — the int8 wire format
  (:data:`QUANT_SNAPSHOT_FORMAT`) that seeds
  :class:`repro.serve.LocalizationServer` workers with ~4x fewer pickled
  bytes than float32 snapshots;
* :func:`run_quantization_benchmark` — the accuracy / latency / footprint
  trade-off recorded under the ``quantization`` section of
  ``BENCH_inference.json`` (CLI: ``repro quantize``,
  ``benchmarks/bench_quantization.py``).
"""

from repro.quant.benchmark import (
    attach_quantization_section,
    format_quantization_summary,
    run_quantization_benchmark,
)
from repro.quant.calibrate import Calibration, calibrate_session
from repro.quant.session import (
    MODES,
    QUANT_SNAPSHOT_FORMAT,
    SCHEMES,
    QuantizedSession,
    quantize_session,
)

__all__ = [
    "Calibration",
    "calibrate_session",
    "QuantizedSession",
    "quantize_session",
    "QUANT_SNAPSHOT_FORMAT",
    "SCHEMES",
    "MODES",
    "run_quantization_benchmark",
    "attach_quantization_section",
    "format_quantization_summary",
]
