"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``survey``      simulate an offline fingerprint survey and save it
``train``       train VITAL on a saved survey and save the weights
``evaluate``    localization-error report of saved weights on a survey
``compare``     run the framework comparison on one benchmark building
``buildings``   list the benchmark buildings and device tables
``infer-bench`` fused-inference throughput benchmark → BENCH_inference.json
``serve``       multi-process serving demo / benchmark → BENCH_serving.json
``quantize``    calibrate + quantize saved weights → int8 serving snapshot

Every command is deterministic given ``--seed`` (timings aside).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VITAL (DAC 2023) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    survey = sub.add_parser("survey", help="simulate an offline survey")
    survey.add_argument("--building", type=int, default=1, choices=(1, 2, 3, 4))
    survey.add_argument("--n-aps", type=int, default=24)
    survey.add_argument("--devices", default="base", choices=("base", "extended", "all"))
    survey.add_argument("--visits", type=int, default=1)
    survey.add_argument("--seed", type=int, default=0)
    survey.add_argument("--out", required=True, help="output .npz path")
    survey.add_argument("--csv", help="also export a CSV copy")

    train = sub.add_parser("train", help="train VITAL on a saved survey")
    train.add_argument("--data", required=True, help="survey .npz from `survey`")
    train.add_argument("--image-size", type=int, default=24)
    train.add_argument("--epochs", type=int, default=120)
    train.add_argument("--test-fraction", type=float, default=0.2)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", required=True, help="output weights .npz path")

    evaluate = sub.add_parser("evaluate", help="evaluate saved weights")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--weights", required=True)
    evaluate.add_argument("--image-size", type=int, default=24)
    evaluate.add_argument("--test-fraction", type=float, default=0.2)
    evaluate.add_argument("--seed", type=int, default=0)

    compare = sub.add_parser("compare", help="framework comparison on one building")
    compare.add_argument("--building", type=int, default=1, choices=(1, 2, 3, 4))
    compare.add_argument("--frameworks", default="VITAL,ANVIL,SHERPA,CNNLoc,WiDeep")
    compare.add_argument("--extended", action="store_true",
                         help="test on the extended (unseen) devices")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--save", help="write the result JSON here")

    sub.add_parser("buildings", help="list benchmark buildings and devices")

    bench = sub.add_parser(
        "infer-bench",
        help="benchmark the fused inference engine vs the autograd tape",
    )
    bench.add_argument("--image-size", type=int, default=24)
    bench.add_argument("--num-classes", type=int, default=32)
    bench.add_argument("--max-batch", type=int, default=32)
    bench.add_argument("--iters", type=int, default=100,
                       help="single-sample timing iterations")
    bench.add_argument("--samples", type=int, default=256,
                       help="batch-throughput workload size")
    bench.add_argument("--quick", action="store_true",
                       help="smoke mode: shrink iteration counts to run in seconds")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", default="BENCH_inference.json",
                       help="result JSON path (default: BENCH_inference.json)")
    bench.add_argument("--check", action="store_true",
                       help="perf regression gate: compare against the recorded "
                            "baseline at --out instead of overwriting it; exits "
                            "non-zero if fused p50 regresses > 25%%")

    serve = sub.add_parser(
        "serve",
        help="run the sharded multi-process serving layer under a "
             "closed-loop synthetic load",
    )
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes (shards)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batcher capacity in samples")
    serve.add_argument("--deadline-ms", type=float, default=2.0,
                       help="max batching delay before a partial batch dispatches")
    serve.add_argument("--clients", type=int, default=8,
                       help="closed-loop load-generator client threads")
    serve.add_argument("--requests", type=int, default=24,
                       help="requests per client thread")
    serve.add_argument("--request-size", type=int, default=None,
                       help="samples per request (default: --max-batch)")
    serve.add_argument("--image-size", type=int, default=24)
    serve.add_argument("--num-classes", type=int, default=32)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--bench", action="store_true",
                       help="run the full worker-scaling + deadline-sweep + "
                            "fault-tolerance benchmark and write --out")
    serve.add_argument("--quick", action="store_true",
                       help="smoke mode: shrink the load so everything runs "
                            "in seconds")
    serve.add_argument("--out", default="BENCH_serving.json",
                       help="benchmark JSON path (with --bench)")

    quantize = sub.add_parser(
        "quantize",
        help="calibrate + quantize trained weights into an int8 serving "
             "snapshot (repro.quant)",
    )
    quantize.add_argument("--data", required=True,
                          help="survey .npz the weights were trained on "
                               "(drives DAM refit + calibration images)")
    quantize.add_argument("--weights", required=True,
                          help="weights .npz from `train`")
    quantize.add_argument("--image-size", type=int, default=24)
    quantize.add_argument("--test-fraction", type=float, default=0.2)
    quantize.add_argument("--seed", type=int, default=0)
    quantize.add_argument("--scheme", default="per_channel",
                          choices=("per_channel", "per_tensor"),
                          help="weight-scale granularity")
    quantize.add_argument("--mode", default="int8",
                          choices=("int8", "dequant"),
                          help="execution mode recorded in the snapshot: "
                               "int8-resident weights or dequantize-on-load")
    quantize.add_argument("--bits", type=int, default=8)
    quantize.add_argument("--max-batch", type=int, default=32)
    quantize.add_argument("--calibration-samples", type=int, default=64,
                          help="training fingerprints run through the float "
                               "engine before quantizing")
    quantize.add_argument("--out", required=True,
                          help="output snapshot .pkl path")
    quantize.add_argument("--serve-smoke", action="store_true",
                          help="after writing the snapshot, reload it into a "
                               "LocalizationServer and serve the test split")
    return parser


def _load_building(index: int, n_aps: int | None = None):
    from repro.data import buildings as building_presets

    factory = {
        1: building_presets.make_building_1,
        2: building_presets.make_building_2,
        3: building_presets.make_building_3,
        4: building_presets.make_building_4,
    }[index]
    return factory(n_aps=n_aps) if n_aps else factory()


def _device_set(name: str):
    from repro.data import ALL_DEVICES, BASE_DEVICES, EXTENDED_DEVICES

    return {"base": BASE_DEVICES, "extended": EXTENDED_DEVICES, "all": ALL_DEVICES}[name]


def _cmd_survey(args) -> int:
    from repro.data import SurveyConfig, collect_fingerprints, export_csv, save_dataset

    building = _load_building(args.building, args.n_aps)
    config = SurveyConfig(n_visits=args.visits, seed=args.seed)
    dataset = collect_fingerprints(building, _device_set(args.devices), config)
    path = save_dataset(dataset, args.out)
    print(f"surveyed {dataset.summary()}")
    print(f"wrote {path}")
    if args.csv:
        print(f"wrote {export_csv(dataset, args.csv)}")
    return 0


def _split(args):
    from repro.data import load_dataset, train_test_split

    dataset = load_dataset(args.data)
    return train_test_split(dataset, test_fraction=args.test_fraction, seed=args.seed)


def _cmd_train(args) -> int:
    from repro import nn
    from repro.vit import VitalConfig, VitalLocalizer

    train, test = _split(args)
    config = VitalConfig.fast(args.image_size, epochs=args.epochs)
    localizer = VitalLocalizer(config, seed=args.seed)
    print(f"training VITAL on {len(train)} records ({args.epochs} epochs)...")
    localizer.fit(train)
    nn.save_state_dict(localizer.model, args.out)
    errors = localizer.errors_m(test)
    print(f"test mean error {errors.mean():.2f} m (max {errors.max():.2f} m)")
    print(f"wrote weights to {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro import nn
    from repro.eval import error_stats
    from repro.vit import VitalConfig, VitalLocalizer

    train, test = _split(args)
    config = VitalConfig.fast(args.image_size, epochs=1)
    localizer = VitalLocalizer(config, seed=args.seed)
    # Build the model without spending a real training budget, then load.
    quick = config.with_updates(train=type(config.train)(
        **{**config.train.__dict__, "epochs": 1}
    ))
    localizer.config = quick
    localizer.fit(train)
    nn.load_state_dict(localizer.model, args.weights)
    stats = error_stats(localizer.errors_m(test))
    print(f"evaluation: {stats.row()}")
    return 0


def _cmd_compare(args) -> int:
    from repro.eval import EvalProtocol, run_comparison
    from repro.eval.reporting import cdf_table, save_result, summary_table

    frameworks = [f.strip() for f in args.frameworks.split(",") if f.strip()]
    building = _load_building(args.building, n_aps=24)
    result = run_comparison(
        frameworks,
        buildings=[building],
        protocol=EvalProtocol(seed=args.seed),
        extended=args.extended,
        verbose=True,
    )
    print()
    print(summary_table(result))
    print()
    print(cdf_table(result))
    if args.save:
        print(f"\nwrote {save_result(result, args.save)}")
    return 0


def _cmd_infer_bench(args) -> int:
    from repro.infer import (
        check_regression,
        format_check,
        format_summary,
        load_baseline,
        run_inference_benchmark,
        write_benchmark,
    )

    baseline = None
    if args.check:
        try:
            baseline = load_baseline(args.out)
        except FileNotFoundError:
            print(f"no recorded baseline at {args.out}; run infer-bench "
                  "without --check first")
            return 2
    result = run_inference_benchmark(
        image_size=args.image_size,
        num_classes=args.num_classes,
        max_batch=args.max_batch,
        single_iters=args.iters,
        batch_samples=args.samples,
        seed=args.seed,
        quick=args.quick,
    )
    print(format_summary(result))
    if args.check:
        problems = check_regression(result, baseline)
        print()
        print(format_check(result, baseline, problems, path=args.out))
        return 1 if problems else 0
    print(f"wrote {write_benchmark(result, args.out)}")
    return 0


#: BLAS pinning for the serving benchmark: one BLAS thread per worker
#: process, so the scaling sweep measures process sharding rather than
#: BLAS oversubscription (mirrors benchmarks/bench_serving.py).
_BLAS_PIN = {"OPENBLAS_NUM_THREADS": "1", "OMP_NUM_THREADS": "1",
             "MKL_NUM_THREADS": "1"}


def _reexec_with_pinned_blas() -> None:
    """Re-exec ``python -m repro.cli ...`` with BLAS thread pinning set.

    NumPy is already loaded by the time a subcommand runs (importing the
    ``repro`` package pulls it in), so setting the environment here would
    be too late for the current process; a one-time re-exec applies it
    before the interpreter starts.  ``_REPRO_BLAS_PINNED`` guards against
    looping."""
    import os

    if os.environ.get("_REPRO_BLAS_PINNED") or all(
        os.environ.get(k) == v for k, v in _BLAS_PIN.items()
    ):
        return
    env = {**os.environ, **_BLAS_PIN, "_REPRO_BLAS_PINNED": "1"}
    os.execve(sys.executable,
              [sys.executable, "-m", "repro.cli", *sys.argv[1:]], env)


def _cmd_serve(args) -> int:
    from repro.serve import (
        LocalizationServer,
        closed_loop_load,
        format_summary,
        make_session,
        run_serving_benchmark,
        write_benchmark,
    )

    if args.bench:
        result = run_serving_benchmark(
            image_size=args.image_size,
            num_classes=args.num_classes,
            max_batch=args.max_batch,
            quick=args.quick,
            seed=args.seed,
        )
        print()
        print(format_summary(result))
        print(f"wrote {write_benchmark(result, args.out)}")
        return 0 if result["fault_tolerance"]["ok"] else 1

    import json

    import numpy as np

    session = make_session(args.image_size, args.num_classes,
                           args.max_batch, args.seed)
    request_size = args.request_size or args.max_batch
    requests = max(2, args.requests // 4) if args.quick else args.requests
    pool = np.random.default_rng(args.seed + 1).standard_normal(
        (4 * args.max_batch, args.image_size, args.image_size, 3)
    ).astype(np.float32)
    print(f"starting {args.workers} worker(s), max_batch={args.max_batch}, "
          f"deadline={args.deadline_ms}ms ...")
    with LocalizationServer(session, workers=args.workers,
                            max_batch=args.max_batch,
                            max_delay_ms=args.deadline_ms) as server:
        run = closed_loop_load(
            server, pool, clients=args.clients,
            requests_per_client=requests,
            request_size=request_size, seed=args.seed,
        )
    print(f"served {run['total_samples']} samples in {run['elapsed_s']:.2f}s "
          f"→ {run['samples_per_s']:.0f} samples/s "
          f"({args.clients} closed-loop clients)")
    print("server stats:")
    print(json.dumps(run["stats"], indent=2))
    return 1 if run["errors"] else 0


def _cmd_quantize(args) -> int:
    """Calibration → quantized snapshot → (optionally) quantized serving."""
    import pickle

    from repro import nn
    from repro.quant import quantize_session
    from repro.vit import VitalConfig, VitalLocalizer

    train, test = _split(args)
    config = VitalConfig.fast(args.image_size, epochs=1)
    localizer = VitalLocalizer(config, seed=args.seed)
    # Build the model + DAM without spending a real training budget, then
    # load the trained weights (same recipe as `evaluate`).
    localizer.fit(train)
    nn.load_state_dict(localizer.model, args.weights)

    float_session = localizer.compile_inference(max_batch=args.max_batch)
    calibration_images = localizer.dam.process(
        train.features[: args.calibration_samples], training=False, as_image=True
    )
    quantized = quantize_session(
        float_session,
        scheme=args.scheme,
        mode=args.mode,
        bits=args.bits,
        calibration_images=calibration_images,
    )

    float_bytes = len(pickle.dumps(float_session.snapshot()))
    snapshot = quantized.snapshot()
    quant_bytes = len(pickle.dumps(snapshot))
    print(f"calibrated on {quantized.calibration['samples']} fingerprints; "
          f"quantized {args.scheme}/int{args.bits}, mode={args.mode}")
    print(f"snapshot: float32 {float_bytes:,} B -> int8 {quant_bytes:,} B "
          f"({quant_bytes / float_bytes:.1%} of float32, "
          f"{float_bytes / quant_bytes:.1f}x smaller)")

    float_error = float(localizer.errors_m(test).mean())
    localizer._session = quantized
    quant_error = float(localizer.errors_m(test).mean())
    print(f"test mean error: float32 {float_error:.2f} m | "
          f"quantized {quant_error:.2f} m (Δ {quant_error - float_error:+.3f} m)")

    with open(args.out, "wb") as handle:
        pickle.dump(snapshot, handle)
    print(f"wrote {args.out}")

    if args.serve_smoke:
        import numpy as np

        from repro.serve import LocalizationServer

        with open(args.out, "rb") as handle:
            reloaded = pickle.load(handle)
        images = localizer.dam.process(test.features, training=False, as_image=True)
        local = quantized.predict_many(images.astype(np.float32))
        print("serve smoke: 2 workers restoring the int8 snapshot...")
        with LocalizationServer(reloaded, workers=2,
                                max_batch=args.max_batch) as server:
            served = server.predict_many(images, timeout=60.0)
            stats = server.stats()
        match = bool((served == local).all())
        print(f"  served {len(served)} test fingerprints, bit-identical to "
              f"the local quantized session: {match}")
        print(f"  snapshot transport: {stats['snapshot']}")
        if not match:
            return 1
    return 0


def _cmd_buildings(_args) -> int:
    from repro.data import ALL_DEVICES
    from repro.data.buildings import benchmark_buildings

    print("benchmark buildings (Fig. 4):")
    for building in benchmark_buildings():
        print(f"  {building.describe()}")
    print("\ndevices (Tables I & II):")
    for device in ALL_DEVICES:
        print(f"  {device.describe()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if argv is None and args.command == "serve":
        # Real CLI invocation only (never when main() is called with an
        # explicit argv, e.g. from tests): pin BLAS threads for the
        # serving benchmark via a one-time re-exec.
        _reexec_with_pinned_blas()
    handlers = {
        "survey": _cmd_survey,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "compare": _cmd_compare,
        "buildings": _cmd_buildings,
        "infer-bench": _cmd_infer_bench,
        "serve": _cmd_serve,
        "quantize": _cmd_quantize,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
