"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``survey``      simulate an offline fingerprint survey and save it
``train``       train VITAL on a saved survey and save the weights
``evaluate``    localization-error report of saved weights on a survey
``compare``     run the framework comparison on one benchmark building
``buildings``   list the benchmark buildings and device tables
``infer-bench`` fused-inference throughput benchmark → BENCH_inference.json

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VITAL (DAC 2023) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    survey = sub.add_parser("survey", help="simulate an offline survey")
    survey.add_argument("--building", type=int, default=1, choices=(1, 2, 3, 4))
    survey.add_argument("--n-aps", type=int, default=24)
    survey.add_argument("--devices", default="base", choices=("base", "extended", "all"))
    survey.add_argument("--visits", type=int, default=1)
    survey.add_argument("--seed", type=int, default=0)
    survey.add_argument("--out", required=True, help="output .npz path")
    survey.add_argument("--csv", help="also export a CSV copy")

    train = sub.add_parser("train", help="train VITAL on a saved survey")
    train.add_argument("--data", required=True, help="survey .npz from `survey`")
    train.add_argument("--image-size", type=int, default=24)
    train.add_argument("--epochs", type=int, default=120)
    train.add_argument("--test-fraction", type=float, default=0.2)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", required=True, help="output weights .npz path")

    evaluate = sub.add_parser("evaluate", help="evaluate saved weights")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--weights", required=True)
    evaluate.add_argument("--image-size", type=int, default=24)
    evaluate.add_argument("--test-fraction", type=float, default=0.2)
    evaluate.add_argument("--seed", type=int, default=0)

    compare = sub.add_parser("compare", help="framework comparison on one building")
    compare.add_argument("--building", type=int, default=1, choices=(1, 2, 3, 4))
    compare.add_argument("--frameworks", default="VITAL,ANVIL,SHERPA,CNNLoc,WiDeep")
    compare.add_argument("--extended", action="store_true",
                         help="test on the extended (unseen) devices")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--save", help="write the result JSON here")

    sub.add_parser("buildings", help="list benchmark buildings and devices")

    bench = sub.add_parser(
        "infer-bench",
        help="benchmark the fused inference engine vs the autograd tape",
    )
    bench.add_argument("--image-size", type=int, default=24)
    bench.add_argument("--num-classes", type=int, default=32)
    bench.add_argument("--max-batch", type=int, default=32)
    bench.add_argument("--iters", type=int, default=100,
                       help="single-sample timing iterations")
    bench.add_argument("--samples", type=int, default=256,
                       help="batch-throughput workload size")
    bench.add_argument("--quick", action="store_true",
                       help="smoke mode: shrink iteration counts to run in seconds")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", default="BENCH_inference.json",
                       help="result JSON path (default: BENCH_inference.json)")
    return parser


def _load_building(index: int, n_aps: int | None = None):
    from repro.data import buildings as building_presets

    factory = {
        1: building_presets.make_building_1,
        2: building_presets.make_building_2,
        3: building_presets.make_building_3,
        4: building_presets.make_building_4,
    }[index]
    return factory(n_aps=n_aps) if n_aps else factory()


def _device_set(name: str):
    from repro.data import ALL_DEVICES, BASE_DEVICES, EXTENDED_DEVICES

    return {"base": BASE_DEVICES, "extended": EXTENDED_DEVICES, "all": ALL_DEVICES}[name]


def _cmd_survey(args) -> int:
    from repro.data import SurveyConfig, collect_fingerprints, export_csv, save_dataset

    building = _load_building(args.building, args.n_aps)
    config = SurveyConfig(n_visits=args.visits, seed=args.seed)
    dataset = collect_fingerprints(building, _device_set(args.devices), config)
    path = save_dataset(dataset, args.out)
    print(f"surveyed {dataset.summary()}")
    print(f"wrote {path}")
    if args.csv:
        print(f"wrote {export_csv(dataset, args.csv)}")
    return 0


def _split(args):
    from repro.data import load_dataset, train_test_split

    dataset = load_dataset(args.data)
    return train_test_split(dataset, test_fraction=args.test_fraction, seed=args.seed)


def _cmd_train(args) -> int:
    from repro import nn
    from repro.vit import VitalConfig, VitalLocalizer

    train, test = _split(args)
    config = VitalConfig.fast(args.image_size, epochs=args.epochs)
    localizer = VitalLocalizer(config, seed=args.seed)
    print(f"training VITAL on {len(train)} records ({args.epochs} epochs)...")
    localizer.fit(train)
    nn.save_state_dict(localizer.model, args.out)
    errors = localizer.errors_m(test)
    print(f"test mean error {errors.mean():.2f} m (max {errors.max():.2f} m)")
    print(f"wrote weights to {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro import nn
    from repro.eval import error_stats
    from repro.vit import VitalConfig, VitalLocalizer

    train, test = _split(args)
    config = VitalConfig.fast(args.image_size, epochs=1)
    localizer = VitalLocalizer(config, seed=args.seed)
    # Build the model without spending a real training budget, then load.
    quick = config.with_updates(train=type(config.train)(
        **{**config.train.__dict__, "epochs": 1}
    ))
    localizer.config = quick
    localizer.fit(train)
    nn.load_state_dict(localizer.model, args.weights)
    stats = error_stats(localizer.errors_m(test))
    print(f"evaluation: {stats.row()}")
    return 0


def _cmd_compare(args) -> int:
    from repro.eval import EvalProtocol, run_comparison
    from repro.eval.reporting import cdf_table, save_result, summary_table

    frameworks = [f.strip() for f in args.frameworks.split(",") if f.strip()]
    building = _load_building(args.building, n_aps=24)
    result = run_comparison(
        frameworks,
        buildings=[building],
        protocol=EvalProtocol(seed=args.seed),
        extended=args.extended,
        verbose=True,
    )
    print()
    print(summary_table(result))
    print()
    print(cdf_table(result))
    if args.save:
        print(f"\nwrote {save_result(result, args.save)}")
    return 0


def _cmd_infer_bench(args) -> int:
    from repro.infer import format_summary, run_inference_benchmark, write_benchmark

    result = run_inference_benchmark(
        image_size=args.image_size,
        num_classes=args.num_classes,
        max_batch=args.max_batch,
        single_iters=args.iters,
        batch_samples=args.samples,
        seed=args.seed,
        quick=args.quick,
    )
    print(format_summary(result))
    print(f"wrote {write_benchmark(result, args.out)}")
    return 0


def _cmd_buildings(_args) -> int:
    from repro.data import ALL_DEVICES
    from repro.data.buildings import benchmark_buildings

    print("benchmark buildings (Fig. 4):")
    for building in benchmark_buildings():
        print(f"  {building.describe()}")
    print("\ndevices (Tables I & II):")
    for device in ALL_DEVICES:
        print(f"  {device.describe()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "survey": _cmd_survey,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "compare": _cmd_compare,
        "buildings": _cmd_buildings,
        "infer-bench": _cmd_infer_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
