"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``survey``      simulate an offline fingerprint survey and save it
``train``       train VITAL on a saved survey and save the weights
``evaluate``    localization-error report of saved weights on a survey
``compare``     run the framework comparison on one benchmark building
``buildings``   list the benchmark buildings and device tables
``infer-bench`` fused-inference throughput benchmark → BENCH_inference.json
``serve``       multi-process serving demo / benchmark → BENCH_serving.json
``quantize``    calibrate + quantize saved weights → int8 serving snapshot
``fleet``       versioned model registry + multi-tenant hot-swap serving
                (``fleet publish|list|serve|swap|gc|qos``)
``obs``         observability: per-request span traces, unified metrics,
                per-phase compute profile, continuous monitoring
                (``obs trace|stats|top|watch|slo|alerts|journal``)
``gateway``     TCP/HTTP network front door with the quantized-RSSI
                result cache (``gateway serve|bench``)

Every command is deterministic given ``--seed`` (timings aside).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VITAL (DAC 2023) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    survey = sub.add_parser("survey", help="simulate an offline survey")
    survey.add_argument("--building", type=int, default=1, choices=(1, 2, 3, 4))
    survey.add_argument("--n-aps", type=int, default=24)
    survey.add_argument("--devices", default="base", choices=("base", "extended", "all"))
    survey.add_argument("--visits", type=int, default=1)
    survey.add_argument("--seed", type=int, default=0)
    survey.add_argument("--out", required=True, help="output .npz path")
    survey.add_argument("--csv", help="also export a CSV copy")

    train = sub.add_parser("train", help="train VITAL on a saved survey")
    train.add_argument("--data", required=True, help="survey .npz from `survey`")
    train.add_argument("--image-size", type=int, default=24)
    train.add_argument("--epochs", type=int, default=120)
    train.add_argument("--test-fraction", type=float, default=0.2)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", required=True, help="output weights .npz path")

    evaluate = sub.add_parser("evaluate", help="evaluate saved weights")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--weights", required=True)
    evaluate.add_argument("--image-size", type=int, default=24)
    evaluate.add_argument("--test-fraction", type=float, default=0.2)
    evaluate.add_argument("--seed", type=int, default=0)

    compare = sub.add_parser("compare", help="framework comparison on one building")
    compare.add_argument("--building", type=int, default=1, choices=(1, 2, 3, 4))
    compare.add_argument("--frameworks", default="VITAL,ANVIL,SHERPA,CNNLoc,WiDeep")
    compare.add_argument("--extended", action="store_true",
                         help="test on the extended (unseen) devices")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--save", help="write the result JSON here")

    sub.add_parser("buildings", help="list benchmark buildings and devices")

    bench = sub.add_parser(
        "infer-bench",
        help="benchmark the fused inference engine vs the autograd tape",
    )
    bench.add_argument("--image-size", type=int, default=24)
    bench.add_argument("--num-classes", type=int, default=32)
    bench.add_argument("--max-batch", type=int, default=32)
    bench.add_argument("--iters", type=int, default=100,
                       help="single-sample timing iterations")
    bench.add_argument("--samples", type=int, default=256,
                       help="batch-throughput workload size")
    bench.add_argument("--quick", action="store_true",
                       help="smoke mode: shrink iteration counts to run in seconds")
    bench.add_argument("--kernel", default="auto",
                       choices=("auto", "blocked", "naive"),
                       help="GEMM layer for the fused lane (auto resolves to "
                            "the product default, honoring REPRO_KERNEL); the "
                            "kernels section always measures both")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", default="BENCH_inference.json",
                       help="result JSON path (default: BENCH_inference.json)")
    bench.add_argument("--check", action="store_true",
                       help="perf regression gate: compare against the recorded "
                            "baseline at --out instead of overwriting it; exits "
                            "non-zero if fused p50 regresses > 25%%")

    serve = sub.add_parser(
        "serve",
        help="run the sharded multi-process serving layer under a "
             "closed-loop synthetic load",
    )
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes (shards)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batcher capacity in samples")
    serve.add_argument("--deadline-ms", type=float, default=2.0,
                       help="max batching delay before a partial batch dispatches")
    serve.add_argument("--clients", type=int, default=8,
                       help="closed-loop load-generator client threads")
    serve.add_argument("--requests", type=int, default=24,
                       help="requests per client thread")
    serve.add_argument("--request-size", type=int, default=None,
                       help="samples per request (default: --max-batch)")
    serve.add_argument("--image-size", type=int, default=24)
    serve.add_argument("--num-classes", type=int, default=32)
    serve.add_argument("--snapshot", default=None,
                       help="serve a saved engine snapshot .pkl (float32 or "
                            "quantized) instead of compiling a fresh demo "
                            "session in-process")
    serve.add_argument("--transport", default="shm",
                       choices=("shm", "pickle"),
                       help="batch payload transport: zero-copy shared-memory "
                            "rings (default; auto-falls-back to pickle where "
                            "shared_memory is unavailable) or pickled ndarrays")
    serve.add_argument("--qos", action="append", default=None,
                       metavar="MODEL=PRIORITY[:MAX_QUEUE[:DEADLINE_MS]]",
                       help="per-route QoS admission policy (repeatable): "
                            "priority class interactive|standard|batch, "
                            "optional queue bound (samples) and default "
                            "request deadline")
    serve.add_argument("--max-queue", type=int, default=4096,
                       help="server-wide pending-request bound; overload "
                            "rejects synchronously with a structured error")
    serve.add_argument("--trace-sample", type=float, default=0.0,
                       help="fraction of requests to span-trace (0 disables "
                            "tracing; 1.0 traces everything)")
    serve.add_argument("--json", action="store_true",
                       help="emit the final stats as the repro.obs metrics "
                            "snapshot (machine-readable, same schema as "
                            "`obs stats`) instead of the human stats dump")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--bench", action="store_true",
                       help="run the full worker-scaling + deadline-sweep + "
                            "fault-tolerance benchmark and write --out")
    serve.add_argument("--quick", action="store_true",
                       help="smoke mode: shrink the load so everything runs "
                            "in seconds")
    serve.add_argument("--out", default="BENCH_serving.json",
                       help="benchmark JSON path (with --bench)")

    quantize = sub.add_parser(
        "quantize",
        help="calibrate + quantize trained weights into an int8 serving "
             "snapshot (repro.quant)",
    )
    quantize.add_argument("--data", required=True,
                          help="survey .npz the weights were trained on "
                               "(drives DAM refit + calibration images)")
    quantize.add_argument("--weights", required=True,
                          help="weights .npz from `train`")
    quantize.add_argument("--image-size", type=int, default=24)
    quantize.add_argument("--test-fraction", type=float, default=0.2)
    quantize.add_argument("--seed", type=int, default=0)
    quantize.add_argument("--scheme", default="per_channel",
                          choices=("per_channel", "per_tensor"),
                          help="weight-scale granularity")
    quantize.add_argument("--mode", default="int8",
                          choices=("int8", "dequant"),
                          help="execution mode recorded in the snapshot: "
                               "int8-resident weights or dequantize-on-load")
    quantize.add_argument("--bits", type=int, default=8)
    quantize.add_argument("--max-batch", type=int, default=32)
    quantize.add_argument("--calibration-samples", type=int, default=64,
                          help="training fingerprints run through the float "
                               "engine before quantizing")
    quantize.add_argument("--out", required=True,
                          help="output snapshot .pkl path")
    quantize.add_argument("--serve-smoke", action="store_true",
                          help="after writing the snapshot, reload it into a "
                               "LocalizationServer and serve the test split")

    fleet = sub.add_parser(
        "fleet",
        help="versioned model registry + multi-tenant hot-swap serving",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    publish = fleet_sub.add_parser(
        "publish", help="publish an engine snapshot as a new model version"
    )
    publish.add_argument("--registry", required=True,
                         help="registry root directory (created if missing)")
    publish.add_argument("--model-id", required=True,
                         help="model identifier, e.g. bldg-1 or bldg-2-int8")
    publish.add_argument("--snapshot", required=True,
                         help="engine snapshot .pkl (float32 from "
                              "InferenceSession.snapshot() or quantized from "
                              "`repro quantize`)")
    publish.add_argument("--building", type=int, default=None,
                         help="building index recorded in the manifest")
    publish.add_argument("--devices", default=None,
                         help="device-set note recorded in the manifest")
    publish.add_argument("--accuracy-m", type=float, default=None,
                         help="mean localization error (m) from evaluation, "
                              "recorded in the manifest")
    publish.add_argument("--note", default=None,
                         help="free-form manifest note")
    publish.add_argument("--pin", action="store_true",
                         help="pin the new version as the serving default")

    listing = fleet_sub.add_parser(
        "list", help="list published models and versions"
    )
    listing.add_argument("--registry", required=True)
    listing.add_argument("--model-id", default=None,
                         help="restrict to one model id")

    fserve = fleet_sub.add_parser(
        "serve",
        help="deploy registry models into a FleetServer and run a "
             "closed-loop synthetic load against each",
    )
    fserve.add_argument("--registry", required=True)
    fserve.add_argument("--models", required=True,
                        help="comma-separated model specs, each "
                             "MODEL_ID[:VERSION] (default version: pinned, "
                             "else latest)")
    fserve.add_argument("--workers", type=int, default=2)
    fserve.add_argument("--max-batch", type=int, default=32)
    fserve.add_argument("--deadline-ms", type=float, default=2.0)
    fserve.add_argument("--clients", type=int, default=4,
                        help="closed-loop client threads per model")
    fserve.add_argument("--requests", type=int, default=16,
                        help="requests per client thread")
    fserve.add_argument("--json", action="store_true",
                        help="emit the final stats as the repro.obs metrics "
                             "snapshot (fleet collector included) instead of "
                             "the human stats dump")
    fserve.add_argument("--seed", type=int, default=0)

    swap = fleet_sub.add_parser(
        "swap",
        help="hot-swap drill: serve one version under load, swap to "
             "another with zero lost requests",
    )
    swap.add_argument("--registry", required=True)
    swap.add_argument("--model-id", required=True)
    swap.add_argument("--to-version", type=int, required=True,
                      help="version to hot-swap to")
    swap.add_argument("--from-version", type=int, default=None,
                      help="incumbent version (default: pinned, else latest)")
    swap.add_argument("--workers", type=int, default=2)
    swap.add_argument("--max-batch", type=int, default=32)
    swap.add_argument("--clients", type=int, default=4)
    swap.add_argument("--requests", type=int, default=16)
    swap.add_argument("--canary", action="store_true",
                      help="roll out via a canary fraction with auto "
                           "promote/rollback instead of an immediate swap")
    swap.add_argument("--canary-fraction", type=float, default=0.25)
    swap.add_argument("--seed", type=int, default=0)

    fqos = fleet_sub.add_parser(
        "qos",
        help="show or set per-model QoS admission policies "
             "(stored at <registry>/qos.json; `fleet serve` applies them)",
    )
    fqos.add_argument("--registry", required=True)
    fqos.add_argument("--model-id", default=None,
                      help="model to show or (with --set) configure")
    fqos.add_argument("--set", default=None,
                      metavar="PRIORITY[:MAX_QUEUE[:DEADLINE_MS]]",
                      help="install this policy for --model-id "
                           "(e.g. interactive:256:500)")

    gc = fleet_sub.add_parser(
        "gc",
        help="garbage-collect the registry: delete blobs unreferenced by "
             "any manifest (pinned versions always survive)",
    )
    gc.add_argument("--registry", required=True)
    gc.add_argument("--keep-latest", type=int, default=None,
                    help="first prune each model's manifests down to its "
                         "newest N versions (the pinned version is always "
                         "kept); blobs those manifests referenced become "
                         "collectable")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be reclaimed without deleting")

    obs = sub.add_parser(
        "obs",
        help="observability demos against a compiled serving stack: span "
             "traces, metrics snapshots, live tail, SLO/alert monitoring",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    def _obs_common(p):
        p.add_argument("--workers", type=int, default=2)
        p.add_argument("--max-batch", type=int, default=16)
        p.add_argument("--image-size", type=int, default=24)
        p.add_argument("--num-classes", type=int, default=32)
        p.add_argument("--seed", type=int, default=0)

    otrace = obs_sub.add_parser(
        "trace",
        help="serve a few requests at trace_sample=1.0 with worker "
             "profiling and print each request's span chain",
    )
    _obs_common(otrace)
    otrace.add_argument("--requests", type=int, default=8)
    otrace.add_argument("--request-size", type=int, default=4)
    otrace.add_argument("--out", default=None,
                        help="also write the trace buffer as JSON here")
    otrace.add_argument("--chrome", default=None,
                        help="also write a Chrome trace_event file here "
                             "(load in chrome://tracing or Perfetto)")

    ostats = obs_sub.add_parser(
        "stats",
        help="run a short load and print the unified metrics registry",
    )
    _obs_common(ostats)
    ostats.add_argument("--requests", type=int, default=32)
    ostats.add_argument("--prometheus", action="store_true",
                        help="print Prometheus text exposition instead of "
                             "the JSON snapshot")

    otop = obs_sub.add_parser(
        "top",
        help="live-tail per-interval request/trace rates, p95 latency and "
             "queue depth under a background closed-loop load",
    )
    _obs_common(otop)
    otop.add_argument("--duration", type=float, default=5.0,
                      help="seconds to run the background load")
    otop.add_argument("--interval", type=float, default=0.5,
                      help="seconds between refresh lines")
    otop.add_argument("--clients", type=int, default=4)

    owatch = obs_sub.add_parser(
        "watch",
        help="live monitoring dashboard: per-route latency sparklines, SLO "
             "error budgets, firing alerts and recent journal events from "
             "a continuously sampled timeline",
    )
    _obs_common(owatch)
    owatch.add_argument("--duration", type=float, default=6.0,
                        help="seconds to run the background load")
    owatch.add_argument("--interval", type=float, default=0.5,
                        help="dashboard refresh (and timeline sampling) "
                             "interval in seconds")
    owatch.add_argument("--clients", type=int, default=4)
    owatch.add_argument("--journal", default=None,
                        help="persist the event journal as JSONL here")
    owatch.add_argument("--spike-at", type=float, default=None,
                        help="inject a 500 ms latency spike this many "
                             "seconds in, to demo drift/alert firing")
    owatch.add_argument("--gateway", action="store_true",
                        help="put the TCP gateway in front of the server "
                             "and drive part of the load over the network; "
                             "adds a gateway row to the dashboard")

    oslo = obs_sub.add_parser(
        "slo",
        help="run a short load with the monitor attached and print each "
             "SLO's burn rates and remaining error budget",
    )
    _obs_common(oslo)
    oslo.add_argument("--duration", type=float, default=4.0)
    oslo.add_argument("--interval", type=float, default=0.25)
    oslo.add_argument("--clients", type=int, default=4)
    oslo.add_argument("--json", action="store_true",
                      help="print the raw SLO reports as JSON")

    oalerts = obs_sub.add_parser(
        "alerts",
        help="demo the alert engine: calm load, then an injected latency "
             "spike; prints rule states and the journal tail",
    )
    _obs_common(oalerts)
    oalerts.add_argument("--duration", type=float, default=6.0)
    oalerts.add_argument("--interval", type=float, default=0.25)
    oalerts.add_argument("--clients", type=int, default=4)
    oalerts.add_argument("--no-spike", action="store_true",
                         help="skip the injected spike (expect no alerts)")

    ojournal = obs_sub.add_parser(
        "journal",
        help="pretty-print a persisted JSONL event journal "
             "(written via `obs watch --journal` or journal_path=)",
    )
    ojournal.add_argument("path", help="journal JSONL file to read")
    ojournal.add_argument("--limit", type=int, default=None,
                          help="only the last N events")
    ojournal.add_argument("--kind", default=None,
                          help="filter by event kind (alert, drift, swap, ...)")

    gateway = sub.add_parser(
        "gateway",
        help="TCP/HTTP network front door over the serving layer: "
             "length-prefixed JSON frames + POST /localize, with the "
             "quantized-RSSI result cache",
    )
    gateway_sub = gateway.add_subparsers(dest="gateway_command",
                                         required=True)

    gserve = gateway_sub.add_parser(
        "serve",
        help="serve a compiled session (or a saved snapshot) behind the "
             "gateway until interrupted",
    )
    gserve.add_argument("--host", default="127.0.0.1")
    gserve.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral, printed at start)")
    gserve.add_argument("--workers", type=int, default=2)
    gserve.add_argument("--max-batch", type=int, default=32)
    gserve.add_argument("--image-size", type=int, default=24)
    gserve.add_argument("--num-classes", type=int, default=32)
    gserve.add_argument("--seed", type=int, default=0)
    gserve.add_argument("--snapshot", default=None,
                        help="serve this saved session snapshot (from "
                             "`quantize` or `fleet publish`) instead of a "
                             "random-weight demo session")
    gserve.add_argument("--max-connections", type=int, default=256)
    gserve.add_argument("--max-inflight", type=int, default=32,
                        help="per-connection in-flight window (backpressure)")
    gserve.add_argument("--cache-step-db", type=float, default=2.0,
                        help="RSSI quantization step for the result cache")
    gserve.add_argument("--cache-entries", type=int, default=4096,
                        help="result-cache LRU capacity (0 disables caching)")
    gserve.add_argument("--cache-ttl-s", type=float, default=60.0)
    gserve.add_argument("--request-timeout-s", type=float, default=30.0)
    gserve.add_argument("--duration", type=float, default=None,
                        help="stop after this many seconds "
                             "(default: run until Ctrl-C)")

    gbench = gateway_sub.add_parser(
        "bench",
        help="network benchmark: connection-scaling curve, co-location/"
             "cache-hit sweep, graceful-drain drill → the gateway section "
             "of BENCH_serving.json",
    )
    gbench.add_argument("--quick", action="store_true",
                        help="smoke mode: fewer clients/requests so the "
                             "lanes run in seconds")
    gbench.add_argument("--seed", type=int, default=0)
    gbench.add_argument("--out", default="BENCH_serving.json",
                        help="merged record path")
    gbench.add_argument("--check", action="store_true",
                        help="validate the recorded gateway gates instead "
                             "of re-running")
    return parser


def _load_building(index: int, n_aps: int | None = None):
    from repro.data import buildings as building_presets

    factory = {
        1: building_presets.make_building_1,
        2: building_presets.make_building_2,
        3: building_presets.make_building_3,
        4: building_presets.make_building_4,
    }[index]
    return factory(n_aps=n_aps) if n_aps else factory()


def _device_set(name: str):
    from repro.data import ALL_DEVICES, BASE_DEVICES, EXTENDED_DEVICES

    return {"base": BASE_DEVICES, "extended": EXTENDED_DEVICES, "all": ALL_DEVICES}[name]


def _cmd_survey(args) -> int:
    from repro.data import SurveyConfig, collect_fingerprints, export_csv, save_dataset

    building = _load_building(args.building, args.n_aps)
    config = SurveyConfig(n_visits=args.visits, seed=args.seed)
    dataset = collect_fingerprints(building, _device_set(args.devices), config)
    path = save_dataset(dataset, args.out)
    print(f"surveyed {dataset.summary()}")
    print(f"wrote {path}")
    if args.csv:
        print(f"wrote {export_csv(dataset, args.csv)}")
    return 0


def _split(args):
    from repro.data import load_dataset, train_test_split

    dataset = load_dataset(args.data)
    return train_test_split(dataset, test_fraction=args.test_fraction, seed=args.seed)


def _cmd_train(args) -> int:
    from repro import nn
    from repro.vit import VitalConfig, VitalLocalizer

    train, test = _split(args)
    config = VitalConfig.fast(args.image_size, epochs=args.epochs)
    localizer = VitalLocalizer(config, seed=args.seed)
    print(f"training VITAL on {len(train)} records ({args.epochs} epochs)...")
    localizer.fit(train)
    nn.save_state_dict(localizer.model, args.out)
    errors = localizer.errors_m(test)
    print(f"test mean error {errors.mean():.2f} m (max {errors.max():.2f} m)")
    print(f"wrote weights to {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro import nn
    from repro.eval import error_stats
    from repro.vit import VitalConfig, VitalLocalizer

    train, test = _split(args)
    config = VitalConfig.fast(args.image_size, epochs=1)
    localizer = VitalLocalizer(config, seed=args.seed)
    # Build the model without spending a real training budget, then load.
    quick = config.with_updates(train=type(config.train)(
        **{**config.train.__dict__, "epochs": 1}
    ))
    localizer.config = quick
    localizer.fit(train)
    nn.load_state_dict(localizer.model, args.weights)
    stats = error_stats(localizer.errors_m(test))
    print(f"evaluation: {stats.row()}")
    return 0


def _cmd_compare(args) -> int:
    from repro.eval import EvalProtocol, run_comparison
    from repro.eval.reporting import cdf_table, save_result, summary_table

    frameworks = [f.strip() for f in args.frameworks.split(",") if f.strip()]
    building = _load_building(args.building, n_aps=24)
    result = run_comparison(
        frameworks,
        buildings=[building],
        protocol=EvalProtocol(seed=args.seed),
        extended=args.extended,
        verbose=True,
    )
    print()
    print(summary_table(result))
    print()
    print(cdf_table(result))
    if args.save:
        print(f"\nwrote {save_result(result, args.save)}")
    return 0


def _cmd_infer_bench(args) -> int:
    from repro.infer import (
        check_regression,
        format_check,
        format_summary,
        load_baseline,
        run_inference_benchmark,
        write_benchmark,
    )

    baseline = None
    if args.check:
        try:
            baseline = load_baseline(args.out)
        except FileNotFoundError:
            print(f"no recorded baseline at {args.out}; run infer-bench "
                  "without --check first")
            return 2
    result = run_inference_benchmark(
        image_size=args.image_size,
        num_classes=args.num_classes,
        max_batch=args.max_batch,
        single_iters=args.iters,
        batch_samples=args.samples,
        seed=args.seed,
        quick=args.quick,
        kernel=args.kernel,
    )
    print(format_summary(result))
    if args.check:
        problems = check_regression(result, baseline)
        print()
        print(format_check(result, baseline, problems, path=args.out))
        return 1 if problems else 0
    print(f"wrote {write_benchmark(result, args.out)}")
    return 0


#: BLAS pinning for the serving benchmark: one BLAS thread per worker
#: process, so the scaling sweep measures process sharding rather than
#: BLAS oversubscription (mirrors benchmarks/bench_serving.py).
_BLAS_PIN = {"OPENBLAS_NUM_THREADS": "1", "OMP_NUM_THREADS": "1",
             "MKL_NUM_THREADS": "1"}


def _reexec_with_pinned_blas() -> None:
    """Re-exec ``python -m repro.cli ...`` with BLAS thread pinning set.

    NumPy is already loaded by the time a subcommand runs (importing the
    ``repro`` package pulls it in), so setting the environment here would
    be too late for the current process; a one-time re-exec applies it
    before the interpreter starts.  ``_REPRO_BLAS_PINNED`` guards against
    looping."""
    import os

    if os.environ.get("_REPRO_BLAS_PINNED") or all(
        os.environ.get(k) == v for k, v in _BLAS_PIN.items()
    ):
        return
    env = {**os.environ, **_BLAS_PIN, "_REPRO_BLAS_PINNED": "1"}
    os.execve(sys.executable,
              [sys.executable, "-m", "repro.cli", *sys.argv[1:]], env)


def _cmd_serve(args) -> int:
    from repro.serve import (
        LocalizationServer,
        closed_loop_load,
        format_summary,
        make_session,
        run_serving_benchmark,
        write_benchmark,
    )

    if args.bench:
        if args.snapshot:
            print("--snapshot and --bench are mutually exclusive (the "
                  "benchmark compiles its own sessions)")
            return 2
        result = run_serving_benchmark(
            image_size=args.image_size,
            num_classes=args.num_classes,
            max_batch=args.max_batch,
            quick=args.quick,
            seed=args.seed,
            transport=args.transport,
        )
        print()
        print(format_summary(result))
        print(f"wrote {write_benchmark(result, args.out)}")
        return 0 if result["fault_tolerance"]["ok"] else 1

    import json

    import numpy as np

    if args.snapshot:
        # Serve a saved snapshot — no retraining or compiling in-process.
        # `fleet serve` deploys registry blobs through the same loader.
        from repro.fleet import read_snapshot_file
        from repro.infer import snapshot_info

        session = read_snapshot_file(args.snapshot)
        info = snapshot_info(session)
        image_size, channels = info["image_size"], info["channels"]
        print(f"loaded {args.snapshot}: {info['format']} "
              f"(image={image_size}, channels={channels}, "
              f"classes={info['num_classes']})")
    else:
        session = make_session(args.image_size, args.num_classes,
                               args.max_batch, args.seed)
        image_size, channels = args.image_size, 3
    qos = None
    if args.qos:
        from repro.serve import QosPolicy

        qos = {}
        for spec in args.qos:
            model, sep, policy = spec.partition("=")
            if not sep or not model.strip():
                print(f"bad --qos {spec!r} "
                      "(want MODEL=PRIORITY[:MAX_QUEUE[:DEADLINE_MS]])")
                return 2
            try:
                qos[model.strip()] = QosPolicy.parse(policy)
            except ValueError as error:
                print(f"bad --qos {spec!r}: {error}")
                return 2
    request_size = args.request_size or args.max_batch
    requests = max(2, args.requests // 4) if args.quick else args.requests
    pool = np.random.default_rng(args.seed + 1).standard_normal(
        (4 * args.max_batch, image_size, image_size, channels)
    ).astype(np.float32)
    print(f"starting {args.workers} worker(s), max_batch={args.max_batch}, "
          f"deadline={args.deadline_ms}ms, transport={args.transport} ...")
    with LocalizationServer(session, workers=args.workers,
                            max_batch=args.max_batch,
                            max_delay_ms=args.deadline_ms,
                            transport=args.transport,
                            trace_sample=args.trace_sample,
                            qos=qos, max_queue=args.max_queue) as server:
        run = closed_loop_load(
            server, pool, clients=args.clients,
            requests_per_client=requests,
            request_size=request_size, seed=args.seed,
        )
        metrics = server.metrics_snapshot()
    if args.json:
        # Machine-readable: the unified obs metrics snapshot (same schema
        # as `repro obs stats` and the Prometheus exporter's source).
        print(json.dumps(metrics, indent=2))
        return 1 if run["errors"] else 0
    print(f"served {run['total_samples']} samples in {run['elapsed_s']:.2f}s "
          f"→ {run['samples_per_s']:.0f} samples/s "
          f"({args.clients} closed-loop clients)")
    print("server stats:")
    print(json.dumps(run["stats"], indent=2))
    return 1 if run["errors"] else 0


def _cmd_quantize(args) -> int:
    """Calibration → quantized snapshot → (optionally) quantized serving."""
    import pickle

    from repro import nn
    from repro.quant import quantize_session
    from repro.vit import VitalConfig, VitalLocalizer

    train, test = _split(args)
    config = VitalConfig.fast(args.image_size, epochs=1)
    localizer = VitalLocalizer(config, seed=args.seed)
    # Build the model + DAM without spending a real training budget, then
    # load the trained weights (same recipe as `evaluate`).
    localizer.fit(train)
    nn.load_state_dict(localizer.model, args.weights)

    float_session = localizer.compile_inference(max_batch=args.max_batch)
    calibration_images = localizer.dam.process(
        train.features[: args.calibration_samples], training=False, as_image=True
    )
    quantized = quantize_session(
        float_session,
        scheme=args.scheme,
        mode=args.mode,
        bits=args.bits,
        calibration_images=calibration_images,
    )

    float_bytes = len(pickle.dumps(float_session.snapshot()))
    snapshot = quantized.snapshot()
    quant_bytes = len(pickle.dumps(snapshot))
    print(f"calibrated on {quantized.calibration['samples']} fingerprints; "
          f"quantized {args.scheme}/int{args.bits}, mode={args.mode}")
    print(f"snapshot: float32 {float_bytes:,} B -> int8 {quant_bytes:,} B "
          f"({quant_bytes / float_bytes:.1%} of float32, "
          f"{float_bytes / quant_bytes:.1f}x smaller)")

    float_error = float(localizer.errors_m(test).mean())
    localizer._session = quantized
    quant_error = float(localizer.errors_m(test).mean())
    print(f"test mean error: float32 {float_error:.2f} m | "
          f"quantized {quant_error:.2f} m (Δ {quant_error - float_error:+.3f} m)")

    with open(args.out, "wb") as handle:
        pickle.dump(snapshot, handle)
    print(f"wrote {args.out}")

    if args.serve_smoke:
        import numpy as np

        from repro.serve import LocalizationServer

        with open(args.out, "rb") as handle:
            reloaded = pickle.load(handle)
        images = localizer.dam.process(test.features, training=False, as_image=True)
        local = quantized.predict_many(images.astype(np.float32))
        print("serve smoke: 2 workers restoring the int8 snapshot...")
        with LocalizationServer(reloaded, workers=2,
                                max_batch=args.max_batch) as server:
            served = server.predict_many(images, timeout=60.0)
            stats = server.stats()
        match = bool((served == local).all())
        print(f"  served {len(served)} test fingerprints, bit-identical to "
              f"the local quantized session: {match}")
        print(f"  snapshot transport: {stats['snapshot']}")
        if not match:
            return 1
    return 0


def _fleet_publish(args) -> int:
    from repro.fleet import ModelRegistry, read_snapshot_file

    registry = ModelRegistry(args.registry)
    snapshot = read_snapshot_file(args.snapshot)
    metadata = {
        key: value
        for key, value in (
            ("building", args.building),
            ("devices", args.devices),
            ("accuracy_m", args.accuracy_m),
            ("note", args.note),
            ("source", args.snapshot),
        )
        if value is not None
    }
    version = registry.publish(args.model_id, snapshot, metadata=metadata)
    entry = registry.get(args.model_id, version)
    print(f"published {entry!r}")
    if args.pin:
        registry.pin(args.model_id, version)
        print(f"pinned {args.model_id} to v{version}")
    return 0


def _fleet_list(args) -> int:
    from repro.fleet import ModelRegistry

    registry = ModelRegistry(args.registry)
    entries = registry.list(args.model_id)
    if not entries:
        scope = f"model {args.model_id!r}" if args.model_id else "registry"
        print(f"{scope} has no published versions ({registry.root})")
        return 0
    print(f"{'model':<20} {'ver':>4} {'format':<26} {'classes':>7} "
          f"{'bytes':>12}  metadata")
    for entry in entries:
        pinned = registry.pinned(entry.model_id)
        marker = " *pinned" if pinned == entry.version else ""
        meta = ", ".join(
            f"{key}={value}" for key, value in sorted(entry.metadata.items())
            if key != "source"
        )
        print(f"{entry.model_id:<20} {entry.version:>4} "
              f"{entry.info['format']:<26} {entry.info['num_classes']:>7} "
              f"{entry.bytes:>12,}  {meta}{marker}")
    return 0


def _fleet_serve(args) -> int:
    import json
    import os
    import threading

    import numpy as np

    from repro.fleet import FleetServer, ModelRegistry
    from repro.serve import closed_loop_load

    registry = ModelRegistry(args.registry)
    specs = []
    for raw in args.models.split(","):
        raw = raw.strip()
        if not raw:
            continue
        model_id, _, version = raw.partition(":")
        specs.append((model_id, int(version) if version else None))
    if not specs:
        print("no models given (--models MODEL_ID[:VERSION],...)")
        return 2

    with FleetServer(registry, workers=args.workers,
                     max_batch=args.max_batch,
                     max_delay_ms=args.deadline_ms,
                     qos_path=os.path.join(args.registry, "qos.json")
                     ) as server:
        pools = {}
        for index, (model_id, version) in enumerate(specs):
            info = server.deploy(model_id, version)
            # Per-model offset keeps pools distinct yet deterministic
            # under --seed (never the salted built-in hash()).
            rng = np.random.default_rng(args.seed + index)
            pools[model_id] = rng.standard_normal(
                (4 * args.max_batch, info["image_size"], info["image_size"],
                 info["channels"])
            ).astype(np.float32)
            print(f"deployed {model_id}@v{info['version']} "
                  f"({info['format']}, classes={info['num_classes']})")

        runs: dict[str, dict] = {}

        def hammer(model_id: str) -> None:
            runs[model_id] = closed_loop_load(
                server, pools[model_id], clients=args.clients,
                requests_per_client=args.requests,
                request_size=max(1, args.max_batch // 4),
                seed=args.seed, model=model_id,
            )

        threads = [threading.Thread(target=hammer, args=(model_id,),
                                    daemon=True)
                   for model_id, _ in specs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = server.stats()
        metrics = server.metrics_snapshot()

    errors = sum(len(run["errors"]) for run in runs.values())
    if args.json:
        print(json.dumps(metrics, indent=2))
        return 1 if errors else 0
    for model_id, run in sorted(runs.items()):
        print(f"  {model_id}: {run['total_samples']} samples at "
              f"{run['samples_per_s']:.0f} samples/s, "
              f"errors={len(run['errors'])}")
    print("fleet stats:")
    print(json.dumps(stats["fleet"], indent=2, default=str))
    return 1 if errors else 0


def _fleet_swap(args) -> int:
    import json
    import threading

    import numpy as np

    from repro.fleet import FleetServer, ModelRegistry
    from repro.serve import closed_loop_load

    registry = ModelRegistry(args.registry)
    with FleetServer(registry, workers=args.workers,
                     max_batch=args.max_batch, max_delay_ms=1.0) as server:
        info = server.deploy(args.model_id, args.from_version)
        print(f"serving {args.model_id}@v{info['version']}; streaming "
              f"{args.clients}x{args.requests} requests...")
        rng = np.random.default_rng(args.seed)
        pool = rng.standard_normal(
            (4 * args.max_batch, info["image_size"], info["image_size"],
             info["channels"])
        ).astype(np.float32)
        out: list[dict] = []
        stream = threading.Thread(
            target=lambda: out.append(closed_loop_load(
                server, pool, clients=args.clients,
                requests_per_client=args.requests,
                request_size=max(1, args.max_batch // 4),
                seed=args.seed, model=args.model_id,
            )),
            daemon=True,
        )
        stream.start()
        import time as _time

        _time.sleep(0.05)
        if args.canary:
            # Ask for at most half the canary-routed share of the stream so
            # the decision can land before traffic runs out; if the stream
            # still ends undecided, settle from the evidence gathered
            # rather than hanging a server with no remaining traffic.
            expected_canary = args.clients * args.requests * args.canary_fraction
            server.start_canary(args.model_id, args.to_version,
                                fraction=args.canary_fraction,
                                min_requests=max(4, int(expected_canary / 2)))
            stream.join()
            status = server.canary_status(args.model_id)
            if status is not None and status["active"]:
                decision = "rollback" if status["batch_errors"] else "promote"
                try:
                    server.decide_canary(args.model_id, decision,
                                         reason="stream ended before "
                                                "min_requests")
                except ValueError:
                    pass  # decided itself between status() and here
            outcome = server.wait_canary(args.model_id, timeout=120.0)
            print(f"canary decision: {outcome['decision']} "
                  f"({outcome['reason']})")
        else:
            report = server.swap(args.model_id, args.to_version)
            stream.join()
            print(f"swap report: {json.dumps(report, indent=2)}")
        run = out[0]
        print(f"streamed {run['total_samples']} samples, "
              f"lost={len(run['errors'])}")
        deployments = server.deployments()
    print(f"now serving: {deployments}")
    return 1 if run["errors"] else 0


def _fleet_gc(args) -> int:
    from repro.fleet import ModelRegistry

    registry = ModelRegistry(args.registry)
    report = registry.gc(keep_latest=args.keep_latest, dry_run=args.dry_run)
    verb = "would reclaim" if args.dry_run else "reclaimed"
    for entry in report["removed_versions"]:
        print(f"  pruned {entry['model_id']}@v{entry['version']}")
    for digest in report["removed_blobs"]:
        print(f"  removed blob {digest[:12]}…")
    print(f"gc: {len(report['removed_versions'])} version(s) pruned, "
          f"{len(report['removed_blobs'])} blob(s) removed — {verb} "
          f"{report['bytes_reclaimed']:,} bytes"
          + (" (dry run)" if args.dry_run else ""))
    return 0


def _fleet_qos(args) -> int:
    """Show or set the per-model admission policies a registry's
    ``fleet serve`` runs will apply (persisted at <registry>/qos.json)."""
    import os

    from repro.serve import QosPolicy, load_qos_file, save_qos_file

    qos_path = os.path.join(args.registry, "qos.json")
    policies = load_qos_file(qos_path)
    if args.set is not None:
        if not args.model_id:
            print("--set needs --model-id")
            return 2
        try:
            policies[args.model_id] = QosPolicy.parse(args.set)
        except ValueError as error:
            print(f"bad --set {args.set!r}: {error}")
            return 2
        save_qos_file(qos_path, policies)
        print(f"wrote {qos_path}")
    shown = policies
    if args.model_id:
        if args.model_id not in policies:
            print(f"no QoS policy for {args.model_id!r}")
            return 0 if args.set is None else 1
        shown = {args.model_id: policies[args.model_id]}
    if not shown:
        print("no QoS policies recorded")
        return 0
    for model_id in sorted(shown):
        entry = shown[model_id].to_dict()
        print(f"{model_id}: priority={entry['priority']} "
              f"max_queue={entry.get('max_queue')} "
              f"deadline_ms={entry.get('deadline_ms')}")
    return 0


def _cmd_fleet(args) -> int:
    handlers = {
        "publish": _fleet_publish,
        "list": _fleet_list,
        "serve": _fleet_serve,
        "swap": _fleet_swap,
        "gc": _fleet_gc,
        "qos": _fleet_qos,
    }
    return handlers[args.fleet_command](args)


def _obs_server(args, **kwargs):
    """A demo LocalizationServer + request pool for the obs subcommands."""
    import numpy as np

    from repro.serve import LocalizationServer, make_session

    session = make_session(args.image_size, args.num_classes,
                           args.max_batch, args.seed)
    pool = np.random.default_rng(args.seed + 1).standard_normal(
        (4 * args.max_batch, args.image_size, args.image_size, 3)
    ).astype(np.float32)
    server = LocalizationServer(session, workers=args.workers,
                                max_batch=args.max_batch, max_delay_ms=2.0,
                                **kwargs)
    return server, pool


def _obs_trace(args) -> int:
    import json

    from repro.obs import to_chrome

    server, pool = _obs_server(args, trace_sample=1.0,
                               trace_buffer=max(64, args.requests),
                               profile=True)
    with server:
        for index in range(args.requests):
            offset = (index * args.request_size) % len(pool)
            block = pool[offset:offset + args.request_size]
            request_id = server.submit(block)
            _logits, breakdown = server.result_with_breakdown(
                request_id, timeout=60.0)
            print(f"request {breakdown['request_id']} "
                  f"(n={breakdown['n']}, transport={breakdown['transport']}, "
                  f"shard={breakdown['shard']}): "
                  f"{breakdown['total_ms']:.3f} ms total")
            for span in breakdown["spans"]:
                bar = "#" * max(1, int(40 * (span["end"] - span["start"])
                                       / (breakdown["total_ms"] / 1e3)))
                print(f"    {span['name']:<14} {span['duration_ms']:>9.3f} ms "
                      f"{bar}")
            phases = breakdown.get("compute_phases") or {}
            if phases:
                inside = ", ".join(
                    f"{name} {entry['total_ms']:.3f}ms"
                    for name, entry in phases.items())
                print(f"    `- compute phases: {inside}")
        traces = server.traces()
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(server.export_traces_json())
            print(f"wrote {args.out}")
        if args.chrome:
            with open(args.chrome, "w") as handle:
                json.dump(to_chrome(traces), handle, indent=2)
            print(f"wrote {args.chrome} (open in chrome://tracing)")
        summary = server.stats()["tracing"]
    print(f"tracer: {summary['recorded']} recorded, "
          f"{summary['buffered']} buffered, {summary['dropped']} dropped")
    return 0


def _obs_stats(args) -> int:
    import json

    server, pool = _obs_server(args, trace_sample=1.0)
    with server:
        for index in range(args.requests):
            offset = (index * 4) % len(pool)
            server.result(server.submit(pool[offset:offset + 4]),
                          timeout=60.0)
        if args.prometheus:
            output = server.to_prometheus()
        else:
            output = json.dumps(server.metrics_snapshot(), indent=2)
    print(output, end="" if args.prometheus else "\n")
    return 0


def _background_load(server, pool, args):
    """Start a closed-loop hammer thread; returns (stop_event, thread)."""
    import threading

    from repro.serve import closed_loop_load

    stop = threading.Event()

    def hammer() -> None:
        while not stop.is_set():
            closed_loop_load(server, pool, clients=args.clients,
                             requests_per_client=8, request_size=4,
                             seed=args.seed)

    thread = threading.Thread(target=hammer, daemon=True)
    thread.start()
    return stop, thread


def _obs_top(args) -> int:
    import time

    server, pool = _obs_server(args, trace_sample=0.1)
    with server:
        stop, load = _background_load(server, pool, args)
        print(f"{'time':>6} {'queue':>6} {'inflight':>8} {'p50_ms':>8} "
              f"{'p95_ms':>8} {'req/s':>8} {'traced/s':>8} {'completed':>10}")
        started = time.perf_counter()
        # Rates come from diffing consecutive stats() snapshots: lifetime
        # counters say what the server has done since birth, the per-interval
        # delta says what it is doing *now*.
        prev_t = started
        prev = server.stats()
        while time.perf_counter() - started < args.duration:
            time.sleep(args.interval)
            now = time.perf_counter()
            stats = server.stats()
            dt = max(1e-9, now - prev_t)
            req_rate = (stats["requests"]["completed"]
                        - prev["requests"]["completed"]) / dt
            traced_rate = (stats["tracing"]["recorded"]
                           - prev["tracing"]["recorded"]) / dt
            latency = stats["request_latency_ms"]
            print(f"{now - started:>6.1f} "
                  f"{stats['queue_depth']:>6} "
                  f"{stats['in_flight_batches']:>8} "
                  f"{(latency['p50_ms'] or 0.0):>8.2f} "
                  f"{(latency['p95_ms'] or 0.0):>8.2f} "
                  f"{req_rate:>8.1f} "
                  f"{traced_rate:>8.1f} "
                  f"{stats['requests']['completed']:>10}")
            prev, prev_t = stats, now
        stop.set()
        load.join(timeout=30.0)
    print("done")
    return 0


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _sparkline(values, width: int = 24) -> str:
    """Unicode sparkline of the last ``width`` values."""
    vals = [v for v in values if v is not None][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(vals)
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[min(top, int((v - lo) / span * top + 0.5))]
        for v in vals)


def _monitored_server(args, **kwargs):
    return _obs_server(args, trace_sample=0.1, monitor=True,
                       monitor_interval_s=args.interval, **kwargs)


def _format_gateway_row(gw: dict | None) -> str | None:
    """One dashboard line for a ``stats()["gateway"]`` section; None when
    no gateway is attached (the watch loop then prints nothing)."""
    if not gw:
        return None
    conns = gw["connections"]
    requests = gw["requests"]
    cache = gw["cache"]
    lookups = cache["hits"] + cache["misses"]
    hit = gw["latency_ms"]["hit"]["p50_ms"]
    miss = gw["latency_ms"]["miss"]["p50_ms"]
    row = (f"  gateway :{gw['listening']['port']}  "
           f"conns {conns['open']}/{conns['limit']}  "
           f"inflight {gw['inflight']['current']}  "
           f"req {requests['responded']}/{requests['received']}  "
           f"cache {cache['hits']}/{lookups} hits")
    if hit is not None:
        row += f"  hit p50 {hit:.2f} ms"
    if miss is not None:
        row += f"  miss p50 {miss:.2f} ms"
    if gw["draining"]:
        row += "  DRAINING"
    return row


def _gateway_load(gateway, pool, stop):
    """One network client looping cache-friendly requests through the
    gateway (repeats from a small fingerprint set → visible hits)."""
    import threading

    def hammer() -> None:
        from repro.serve import GatewayClient

        try:
            client = GatewayClient(gateway.host, gateway.port, timeout=10.0)
        except OSError:
            return
        index = 0
        with client:
            while not stop.is_set():
                try:
                    client.localize(pool[index % 8])
                except Exception:
                    return
                index += 1

    thread = threading.Thread(target=hammer, daemon=True)
    thread.start()
    return thread


def _obs_watch(args) -> int:
    import time

    server, pool = _monitored_server(args, journal_path=args.journal)
    spiked = False
    with server:
        gateway = net_thread = None
        if args.gateway:
            from repro.serve import GatewayServer

            gateway = GatewayServer(server, max_connections=32).start()
        stop, load = _background_load(server, pool, args)
        if gateway is not None:
            net_thread = _gateway_load(gateway, pool, stop)
        started = time.perf_counter()
        while time.perf_counter() - started < args.duration:
            time.sleep(args.interval)
            elapsed = time.perf_counter() - started
            if (args.spike_at is not None and not spiked
                    and elapsed >= args.spike_at):
                # Inject straight into the latency reservoir the sampler
                # scrapes, so the spike flows through the real
                # reservoir -> registry -> timeline -> alert path.
                with server._lock:
                    for _ in range(256):
                        server._request_latency.add(500.0)
                spiked = True
            stats = server.stats()
            mon = stats["monitor"]
            timeline = server.monitor.timeline
            req_rate = timeline.latest("serve_requests_total",
                                       {"status": "completed"}, "rate") or 0.0
            print(f"t={elapsed:>5.1f}s  queue {stats['queue_depth']}  "
                  f"inflight {stats['in_flight_batches']}  "
                  f"{req_rate:7.1f} req/s")
            for route in sorted(stats["route_stats"]):
                series = timeline.values("serve_route_latency_ms",
                                         {"route": route}, "p95")
                last = series[-1][1] if series else 0.0
                print(f"  route {route:<10} p95 {last:>8.2f} ms  "
                      f"{_sparkline([v for _, v in series])}")
            for report in mon["slos"]:
                print(f"  slo {report['slo']:<16} "
                      f"budget {report['budget_remaining'] * 100:>5.1f}%  "
                      f"burn {report['fast']['burn_rate']:.1f}x/"
                      f"{report['slow']['burn_rate']:.1f}x"
                      f"{'  BREACHING' if report['breaching'] else ''}")
            firing = [r["rule"] for r in mon["alerts"]["rules"]
                      if r.get("state") == "firing"]
            events = server.monitor.journal.events(limit=3)
            tail = ", ".join(
                f"{e['kind']}:{e.get('rule', e.get('model', ''))}"
                for e in events)
            print(f"  alerts: {', '.join(firing) if firing else 'none firing'}"
                  f" · {mon['journal']['events']} events ({tail})")
            row = _format_gateway_row(stats.get("gateway"))
            if row:
                print(row)
            admission = stats.get("admission") or {}
            totals = {"admitted": 0, "rejected": 0, "shed": 0, "expired": 0}
            for cell in (admission.get("counters") or {}).values():
                for key in totals:
                    totals[key] += cell.get(key, 0)
            line = ("  admission: " + " ".join(
                f"{key} {value}" for key, value in totals.items()))
            shares = admission.get("route_shares") or {}
            if shares:
                line += "  shares " + " ".join(
                    f"{model}:{share:.2f}"
                    for model, share in sorted(shares.items()))
            shedding = admission.get("shedding") or {}
            if shedding:
                line += "  SHEDDING " + " ".join(
                    f"{model}@{state['fraction']:.2f}"
                    for model, state in sorted(shedding.items()))
            print(line)
        stop.set()
        if net_thread is not None:
            net_thread.join(timeout=15.0)
        if gateway is not None:
            gateway.close()
        load.join(timeout=30.0)
    if args.journal:
        print(f"journal written to {args.journal}")
    return 0


def _obs_slo(args) -> int:
    import json
    import time

    server, pool = _monitored_server(args)
    with server:
        stop, load = _background_load(server, pool, args)
        time.sleep(args.duration)
        stop.set()
        load.join(timeout=30.0)
        reports = server.monitor.slo_engine.last_reports()
        if args.json:
            print(json.dumps(reports, indent=2))
        else:
            print(f"{'slo':<18} {'kind':<10} {'budget':>7} {'fast':>7} "
                  f"{'slow':>7} {'state':>10}")
            for r in reports:
                state = "BREACHING" if r["breaching"] else "ok"
                print(f"{r['slo']:<18} {r['kind']:<10} "
                      f"{r['budget_remaining'] * 100:>6.1f}% "
                      f"{r['fast']['burn_rate']:>6.1f}x "
                      f"{r['slow']['burn_rate']:>6.1f}x {state:>10}")
    return 0


def _obs_alerts(args) -> int:
    import time

    server, pool = _monitored_server(args)
    with server:
        stop, load = _background_load(server, pool, args)
        time.sleep(args.duration / 2)
        if not args.no_spike:
            with server._lock:
                for _ in range(256):
                    server._request_latency.add(500.0)
            print(f"[{args.duration / 2:.1f}s] injected 500 ms latency spike")
        time.sleep(args.duration / 2)
        stop.set()
        load.join(timeout=30.0)
        status = server.monitor.alerts.status()
        print(f"{'rule':<18} {'type':<14} {'state':>8}  value")
        for rule in status["rules"]:
            print(f"{rule['rule']:<18} {rule['type']:<14} "
                  f"{rule['state']:>8}  {rule.get('value', '-')}")
        print(f"\n{status['fired']} fired, {status['resolved']} resolved; "
              "journal tail:")
        for event in server.monitor.journal.events(limit=8):
            rule = event.get("rule", event.get("model", ""))
            print(f"  #{event['seq']} t={event['ts']:.3f} "
                  f"{event['kind']:<10} {rule} "
                  f"{event.get('state', '')}")
    return 0


def _obs_journal(args) -> int:
    from repro.obs import EventJournal

    events = EventJournal.read(args.path, limit=args.limit, kind=args.kind)
    if not events:
        print("no events")
        return 0
    for event in events:
        extra = {k: v for k, v in event.items()
                 if k not in ("schema", "seq", "ts", "kind")}
        parts = []
        for key, value in extra.items():
            if isinstance(value, dict) and all(
                    not isinstance(inner, (dict, list))
                    for inner in value.values()):
                # Flat per-route maps (rebalance shares/loads, shed
                # counters) render inline instead of being dropped.
                inner = ",".join(
                    f"{ik}:{round(iv, 3) if isinstance(iv, float) else iv}"
                    for ik, iv in sorted(value.items()))
                parts.append(f"{key}=[{inner}]")
            elif not isinstance(value, (dict, list)):
                parts.append(f"{key}={value}")
        print(f"#{event['seq']:>4} ts={event['ts']:.3f} "
              f"{event['kind']:<14} {' '.join(parts)}")
    return 0


def _cmd_obs(args) -> int:
    handlers = {
        "trace": _obs_trace,
        "stats": _obs_stats,
        "top": _obs_top,
        "watch": _obs_watch,
        "slo": _obs_slo,
        "alerts": _obs_alerts,
        "journal": _obs_journal,
    }
    return handlers[args.obs_command](args)


def _gateway_serve(args) -> int:
    from repro.serve import (
        GatewayServer,
        LocalizationServer,
        make_session,
    )

    if args.snapshot:
        from repro.fleet import read_snapshot_file
        from repro.infer import snapshot_info

        session = read_snapshot_file(args.snapshot)
        info = snapshot_info(session)
        print(f"loaded {args.snapshot}: {info['format']} "
              f"(image={info['image_size']}, channels={info['channels']}, "
              f"classes={info['num_classes']})")
    else:
        session = make_session(args.image_size, args.num_classes,
                               args.max_batch, args.seed)
    with LocalizationServer(session, workers=args.workers,
                            max_batch=args.max_batch,
                            max_delay_ms=2.0) as server:
        gateway = GatewayServer(
            server, host=args.host, port=args.port,
            max_connections=args.max_connections,
            max_inflight=args.max_inflight,
            request_timeout_s=args.request_timeout_s,
            cache_step_db=args.cache_step_db,
            cache_entries=args.cache_entries,
            cache_ttl_s=args.cache_ttl_s if args.cache_ttl_s > 0 else None,
        ).start()
        try:
            info = server.route_info()
            n = info["image_size"] ** 2 * info["channels"]
            print(f"gateway listening on {gateway.host}:{gateway.port} "
                  f"({args.workers} workers, cache step "
                  f"{args.cache_step_db} dB, {args.cache_entries} entries)")
            print(f"  framed JSON: 4-byte BE length + "
                  f'{{"id": 1, "fingerprint": [{n} floats]}}')
            print(f"  HTTP: curl -s http://{gateway.host}:{gateway.port}"
                  f"/localize -d '{{\"fingerprint\": [...]}}'")
            import time

            started = time.monotonic()
            while args.duration is None \
                    or time.monotonic() - started < args.duration:
                time.sleep(0.5)
        except KeyboardInterrupt:
            print("\ndraining ...")
        finally:
            gateway.close()
            summary = gateway.summary()
            requests = summary["requests"]
            cache = summary["cache"]
            print(f"served {requests['responded']} responses over "
                  f"{summary['connections']['total']} connections "
                  f"({cache['hits']} cache hits, "
                  f"{requests['timeouts']} timeouts, "
                  f"{requests['shed']} shed)")
    return 0


def _gateway_bench(args) -> int:
    import os

    from repro.serve import (
        GATEWAY_SCHEMA,
        attach_gateway_section,
        format_gateway_summary,
        gateway_gates_ok,
        load_record,
        run_gateway_benchmark,
        write_benchmark,
    )

    if args.check:
        try:
            record = load_record(args.out)
        except (FileNotFoundError, ValueError) as error:
            print(f"check failed: {error}")
            return 1
        gateway = record.get("gateway")
        if not gateway:
            print(f"{args.out}: no gateway section recorded; run "
                  "`repro gateway bench` first")
            return 1
        print(format_gateway_summary(gateway))
        return 0 if gateway_gates_ok(gateway) else 1

    if os.path.exists(args.out):
        try:
            base = load_record(args.out)
        except (ValueError, OSError):
            base = {"schema": GATEWAY_SCHEMA,
                    "config": {"note": "gateway-only record"}}
    else:
        base = {"schema": GATEWAY_SCHEMA,
                "config": {"note": "gateway-only record"}}
    gateway = run_gateway_benchmark(quick=args.quick, seed=args.seed)
    merged = attach_gateway_section(base, gateway)
    print()
    print(format_gateway_summary(gateway))
    print(f"wrote {write_benchmark(merged, args.out)}")
    return 0 if gateway_gates_ok(gateway) else 1


def _cmd_gateway(args) -> int:
    handlers = {"serve": _gateway_serve, "bench": _gateway_bench}
    return handlers[args.gateway_command](args)


def _cmd_buildings(_args) -> int:
    from repro.data import ALL_DEVICES
    from repro.data.buildings import benchmark_buildings

    print("benchmark buildings (Fig. 4):")
    for building in benchmark_buildings():
        print(f"  {building.describe()}")
    print("\ndevices (Tables I & II):")
    for device in ALL_DEVICES:
        print(f"  {device.describe()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if argv is None and args.command in ("serve", "infer-bench", "obs",
                                         "gateway"):
        # Real CLI invocation only (never when main() is called with an
        # explicit argv, e.g. from tests): pin BLAS threads for the
        # timing-sensitive benchmark commands via a one-time re-exec.
        _reexec_with_pinned_blas()
    handlers = {
        "survey": _cmd_survey,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "compare": _cmd_compare,
        "buildings": _cmd_buildings,
        "infer-bench": _cmd_infer_bench,
        "serve": _cmd_serve,
        "quantize": _cmd_quantize,
        "fleet": _cmd_fleet,
        "obs": _cmd_obs,
        "gateway": _cmd_gateway,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
