"""Unified metrics primitives and registry for the serving stack.

``repro.obs.metrics`` is the single vocabulary every serving layer
speaks when it reports numbers: three primitives (:class:`Counter`,
:class:`Gauge`, :class:`Histogram`) plus a :class:`MetricsRegistry`
that holds labeled series and exports them as one JSON snapshot or as
Prometheus text exposition.

Design notes
------------

* **Zero dependencies.**  stdlib + numpy only — same constraint as the
  rest of the repo.
* **Histogram = lifetime count + bounded window.**  The serving stack's
  latency reservoirs keep a lifetime observation count but compute
  percentiles over a bounded sliding window (the last ``window``
  samples).  :meth:`Histogram.summary` reports **both** explicitly:
  ``count`` is the lifetime total, ``window`` is how many samples the
  percentiles actually describe.  (This fixes the historical ambiguity
  where ``LatencyReservoir.summary()["count"]`` was lifetime while the
  percentiles silently covered at most 2048 samples.)
* **Collectors, not only direct series.**  Serving objects that get
  *replaced* at runtime (e.g. the fleet server installs a fresh
  ``RouteStats`` when a canary starts, so the comparison window is
  clean) cannot be absorbed by get-or-create series — the registry
  would keep handing back the stale object.  Such layers register a
  *collector*: a callable invoked at snapshot/scrape time that emits
  the current values.  Direct series and collector output share one
  wire shape.
* **Bounded cardinality.**  Labeled series are get-or-create keyed by
  ``(name, sorted(labels))``; creating a series beyond ``max_series``
  raises :class:`MetricsError` so a label explosion (e.g. a client id
  leaking into labels) fails loudly instead of eating memory.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from typing import Callable, Iterable, Optional

import numpy as np

_log = logging.getLogger("repro.obs.metrics")

__all__ = [
    "METRICS_SCHEMA",
    "MetricsError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Schema tag stamped on :meth:`MetricsRegistry.snapshot` output.
METRICS_SCHEMA = "repro.obs.metrics.v1"

#: Default bound on the number of distinct labeled series one registry
#: will create before refusing new ones.
DEFAULT_MAX_SERIES = 512


class MetricsError(ValueError):
    """A metrics-registry contract violation (cardinality, kind clash)."""


class Counter:
    """Monotonically increasing value.  Not thread-safe by itself; the
    serving layers mutate counters under their own locks."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("Counter can only increase; got %r" % (amount,))
        self.value += amount

    def summary(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (queue depth, bytes in use)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def summary(self) -> float:
        return self.value


class Histogram:
    """Lifetime-counted, window-bounded distribution.

    Keeps every observation's contribution to ``count`` and ``total``
    (lifetime), but only the most recent ``window_size`` observations
    for percentile estimation.  :meth:`summary` therefore reports:

    ``count``
        lifetime number of observations (never shrinks);
    ``sum``
        lifetime sum of all observed values (never shrinks) — with
        ``count`` this gives scrape-side rate/mean math the conformant
        Prometheus summary pair;
    ``window``
        number of samples the percentiles below describe — ``min(count,
        window_size)``;
    ``p50`` / ``p95`` / ``p99`` / ``mean``
        computed over the window only, ``None`` when the window is
        empty.
    """

    __slots__ = ("_samples", "count", "total")

    def __init__(self, window_size: int = 2048) -> None:
        if window_size <= 0:
            raise MetricsError("Histogram window_size must be positive")
        self._samples: deque = deque(maxlen=int(window_size))
        self.count = 0
        self.total = 0.0

    @property
    def window_size(self) -> int:
        return self._samples.maxlen or 0

    @property
    def window(self) -> int:
        """Number of samples currently in the percentile window."""
        return len(self._samples)

    def observe(self, value: float) -> None:
        self._samples.append(float(value))
        self.count += 1
        self.total += float(value)

    def percentile(self, q: float) -> Optional[float]:
        if not self._samples:
            return None
        return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> dict:
        if not self._samples:
            return {"count": self.count, "sum": self.total, "window": 0,
                    "p50": None, "p95": None, "p99": None, "mean": None}
        data = np.asarray(self._samples)
        return {
            "count": self.count,
            "sum": self.total,
            "window": int(data.size),
            "p50": float(np.percentile(data, 50)),
            "p95": float(np.percentile(data, 95)),
            "p99": float(np.percentile(data, 99)),
            "mean": float(data.mean()),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(name: str, labels: Optional[dict]) -> tuple:
    return (name, tuple(sorted((labels or {}).items())))


class MetricsRegistry:
    """One process-wide table of labeled metric series + collectors.

    Two ways to feed it:

    * get-or-create a direct series (``registry.counter("x", {"route":
      "vital"})``) and mutate the returned primitive;
    * :meth:`add_collector` a zero-arg callable returning an iterable of
      series dicts, evaluated at snapshot/scrape time.  Use this for
      values living in objects that get replaced (fresh canary
      ``RouteStats``) or derived on demand (queue depth).

    Both surface identically in :meth:`snapshot` and
    :meth:`to_prometheus`.
    """

    def __init__(self, max_series: int = DEFAULT_MAX_SERIES) -> None:
        if max_series <= 0:
            raise MetricsError("max_series must be positive")
        self.max_series = int(max_series)
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}
        self._meta: dict[tuple, tuple] = {}  # key -> (name, labels, kind)
        self._collectors: list[Callable[[], Iterable[dict]]] = []
        self.collector_errors = 0

    # -- direct series ----------------------------------------------------

    def counter(self, name: str, labels: Optional[dict] = None) -> Counter:
        return self._get_or_create(name, labels, "counter")

    def gauge(self, name: str, labels: Optional[dict] = None) -> Gauge:
        return self._get_or_create(name, labels, "gauge")

    def histogram(self, name: str, labels: Optional[dict] = None,
                  window_size: int = 2048) -> Histogram:
        return self._get_or_create(name, labels, "histogram",
                                   window_size=window_size)

    def _get_or_create(self, name, labels, kind, **kwargs):
        key = _label_key(name, labels)
        with self._lock:
            metric = self._series.get(key)
            if metric is not None:
                if self._meta[key][2] != kind:
                    raise MetricsError(
                        "series %r already registered as %s, requested %s"
                        % (name, self._meta[key][2], kind))
                return metric
            if len(self._series) >= self.max_series:
                raise MetricsError(
                    "metric series cardinality bound reached (%d); refusing "
                    "new series %r labels=%r — check for unbounded label "
                    "values" % (self.max_series, name, labels))
            metric = _KINDS[kind](**kwargs)
            self._series[key] = metric
            self._meta[key] = (name, dict(labels or {}), kind)
            return metric

    @property
    def series_count(self) -> int:
        with self._lock:
            return len(self._series)

    # -- collectors -------------------------------------------------------

    def add_collector(self, fn: Callable[[], Iterable[dict]]) -> None:
        """Register ``fn`` to be called at snapshot/scrape time.  It must
        return an iterable of dicts shaped like snapshot series entries:
        ``{"name", "labels", "kind", "value"}`` for counter/gauge or
        ``{"name", "labels", "kind": "histogram", "summary": {...}}``."""
        with self._lock:
            self._collectors.append(fn)

    # -- export -----------------------------------------------------------

    def _collect(self) -> list[dict]:
        out = []
        with self._lock:
            for key, metric in self._series.items():
                name, labels, kind = self._meta[key]
                entry = {"name": name, "labels": dict(labels), "kind": kind}
                if kind == "histogram":
                    entry["summary"] = metric.summary()
                else:
                    entry["value"] = metric.summary()
                out.append(entry)
            collectors = list(self._collectors)
        for fn in collectors:
            # One misbehaving collector must not take down the scrape for
            # every other series: log, count, and skip it.
            try:
                collected = []
                for entry in fn():
                    normalized = {
                        "name": entry["name"],
                        "labels": dict(entry.get("labels") or {}),
                        "kind": entry.get("kind", "gauge"),
                    }
                    if normalized["kind"] == "histogram":
                        normalized["summary"] = entry["summary"]
                    else:
                        normalized["value"] = float(entry["value"])
                    collected.append(normalized)
            except Exception:
                self.collector_errors += 1
                _log.warning(
                    "metrics collector %r raised; skipping its series",
                    getattr(fn, "__qualname__", fn), exc_info=True)
                continue
            out.extend(collected)
        out.sort(key=lambda e: (e["name"], sorted(e["labels"].items())))
        return out

    def snapshot(self) -> dict:
        """All series (direct + collected) as one JSON-serializable doc."""
        return {"schema": METRICS_SCHEMA, "series": self._collect()}

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4).

        Counters/gauges emit one sample each.  Histograms emit a summary
        family: ``name{quantile="0.5"}`` etc. over the window, plus the
        conformant ``name_count`` / ``name_sum`` lifetime pair (so
        scrape-side ``rate(sum)/rate(count)`` mean math works) and
        ``name_window`` (samples behind the quantiles) — the count/window
        split mirrors :meth:`Histogram.summary`.
        """
        lines = []
        typed: set = set()
        for entry in self._collect():
            name = _prom_name(entry["name"])
            kind = entry["kind"]
            if kind == "histogram":
                if name not in typed:
                    lines.append("# TYPE %s summary" % name)
                    typed.add(name)
                summ = entry["summary"]
                for q, key in (("0.5", "p50"), ("0.95", "p95"),
                               ("0.99", "p99")):
                    if summ.get(key) is None:
                        continue
                    labels = dict(entry["labels"])
                    labels["quantile"] = q
                    lines.append("%s%s %s" % (name, _prom_labels(labels),
                                              _prom_value(summ[key])))
                base_labels = _prom_labels(entry["labels"])
                lines.append("%s_count%s %d" % (name, base_labels,
                                                summ["count"]))
                if summ.get("sum") is not None:
                    lines.append("%s_sum%s %s" % (name, base_labels,
                                                  _prom_value(summ["sum"])))
                lines.append("%s_window%s %d" % (name, base_labels,
                                                 summ["window"]))
            else:
                prom_type = "counter" if kind == "counter" else "gauge"
                if name not in typed:
                    lines.append("# TYPE %s %s" % (name, prom_type))
                    typed.add(name)
                lines.append("%s%s %s" % (name, _prom_labels(entry["labels"]),
                                          _prom_value(entry["value"])))
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    out = []
    for i, ch in enumerate(name):
        if ch.isalnum() or ch == "_" or ch == ":":
            out.append(ch)
        else:
            out.append("_")
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        value = value.replace("\\", "\\\\").replace('"', '\\"')
        value = value.replace("\n", "\\n")
        parts.append('%s="%s"' % (_prom_name(str(key)), value))
    return "{" + ",".join(parts) + "}"


def _prom_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
