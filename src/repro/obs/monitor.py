"""`repro.obs.monitor` — the continuous-monitoring facade.

A :class:`Monitor` wires the pieces of this package into one object with a
server-shaped lifecycle:

* a :class:`~repro.obs.timeline.Timeline` sampling a ``MetricsRegistry`` at
  fixed cadence on a background thread;
* a :class:`~repro.obs.slo.SloEngine` evaluating declarative objectives
  over the timeline;
* an :class:`~repro.obs.alerts.AlertEngine` running threshold / burn-rate /
  drift rules after every sample;
* an :class:`~repro.obs.alerts.EventJournal` receiving every alert plus any
  lifecycle events pushed in via :meth:`Monitor.event` (the serving and
  fleet layers journal start/stop, shard restarts, deploys, swaps, and
  canary verdicts through that hook).

``LocalizationServer(monitor=True)`` builds one of these against its own
registry with :func:`default_serving_slos` / :func:`default_serving_rules`
and starts/stops it with the server.
"""

from __future__ import annotations

import time

from .alerts import AlertEngine, DriftRule, EventJournal, ThresholdRule
from .slo import Slo, SloEngine
from .timeline import DEFAULT_INTERVAL_S, DEFAULT_RETENTION, Timeline

MONITOR_SCHEMA = "repro.obs.monitor.v1"


def default_serving_slos(
    latency_threshold_ms: float = 50.0,
    latency_target: float = 0.95,
    error_target: float = 0.99,
    fast_window_s: float = 15.0,
    slow_window_s: float = 120.0,
):
    """The two objectives every serving deployment starts with.

    1. ``request_latency``: p95 of ``serve_request_latency_ms`` at or under
       ``latency_threshold_ms`` for ``latency_target`` of samples.
    2. ``request_errors``: at least ``error_target`` of requests complete,
       from ``serve_requests_total{status=...}`` counter deltas.
    """
    common = dict(fast_window_s=fast_window_s, slow_window_s=slow_window_s)
    return [
        Slo.latency(
            "request_latency",
            latency_threshold_ms,
            target=latency_target,
            description=f"p95 request latency <= {latency_threshold_ms} ms",
            **common,
        ),
        Slo.error_rate(
            "request_errors",
            target=error_target,
            description=f"request success rate >= {error_target:.2%}",
            **common,
        ),
    ]


def default_serving_rules(
    latency_spike_ms: float = 250.0,
    spike_for_s: float = 0.0,
    trace_loss_for_s: float = 2.0,
):
    """Default watch set for a serving deployment.

    * ``latency_p95_high``: hard ceiling on p95 request latency;
    * ``latency_drift``: Page–Hinkley watch for sustained upward latency
      shift (the STELLAR-style temporal-drift signal);
    * ``error_rate_shift``: rolling-mean watch on the failure rate;
    * ``trace_loss``: sustained tracer buffer eviction, so dropped spans
      are alertable like any other series.
    """
    return [
        ThresholdRule(
            "latency_p95_high",
            "serve_request_latency_ms",
            field="p95",
            op="gt",
            threshold=latency_spike_ms,
            for_s=spike_for_s,
            description=f"p95 request latency above {latency_spike_ms} ms",
        ),
        DriftRule(
            "latency_drift",
            "serve_request_latency_ms",
            field="p95",
            detector="page_hinkley",
            direction="up",
            description="sustained upward shift in p95 request latency",
        ),
        DriftRule(
            "error_rate_shift",
            "serve_requests_total",
            field="rate",
            labels={"status": "failed"},
            detector="rolling_mean",
            direction="up",
            description="failure rate shifted above its reference window",
        ),
        ThresholdRule(
            "trace_loss",
            "serve_traces_dropped_total",
            field="rate",
            op="gt",
            threshold=0.0,
            for_s=trace_loss_for_s,
            description="tracer evicting spans (buffer too small or unread)",
        ),
    ]


class Monitor:
    """Continuous monitoring for one ``MetricsRegistry``.

    Parameters mirror the composed pieces: sampling ``interval_s`` and
    ``retention`` go to the :class:`Timeline`, ``slos``/``rules`` seed the
    engines, and ``journal_path`` (or a prebuilt ``journal``) selects JSONL
    persistence.  After every timeline sample the SLO and alert engines run
    once, so detection latency is bounded by the sampling cadence.
    """

    def __init__(
        self,
        registry,
        interval_s: float = DEFAULT_INTERVAL_S,
        retention: int = DEFAULT_RETENTION,
        slos=(),
        rules=(),
        journal: EventJournal | None = None,
        journal_path=None,
        journal_capacity: int = 1024,
        clock=time.time,
    ):
        self.journal = journal if journal is not None else EventJournal(
            path=journal_path, capacity=journal_capacity, clock=clock
        )
        self._owns_journal = journal is None
        self.timeline = Timeline(
            registry, interval_s=interval_s, retention=retention, clock=clock
        )
        self.slo_engine = SloEngine(self.timeline, slos)
        self.alerts = AlertEngine(
            self.timeline,
            rules,
            slo_engine=self.slo_engine,
            journal=self.journal,
        )
        self.timeline.add_listener(self._on_sample)

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self.timeline.running

    def start(self) -> None:
        if self.running:
            return
        self.journal.append("monitor_started",
                            interval_s=self.timeline.interval_s)
        self.timeline.start()

    def stop(self) -> None:
        was_running = self.running
        self.timeline.stop(final_sample=True)
        if was_running:
            self.journal.append(
                "monitor_stopped",
                samples=self.timeline.samples,
                alerts_fired=self.alerts.fired,
            )
        if self._owns_journal:
            self.journal.close()

    def _on_sample(self, timeline, now) -> None:
        self.alerts.evaluate(now)

    # -- hooks ---------------------------------------------------------

    def event(self, kind: str, **fields):
        """Journal an external lifecycle event (deploy, swap, canary, ...)."""
        return self.journal.append(kind, **fields)

    def tick(self, now=None) -> None:
        """One manual sample+evaluate step (deterministic driving)."""
        self.timeline.sample_once(now=now)

    # -- reporting -----------------------------------------------------

    def status(self):
        """JSON-serializable summary for ``stats()`` / the CLI."""
        return {
            "schema": MONITOR_SCHEMA,
            "running": self.running,
            "timeline": self.timeline.stats(),
            "slos": self.slo_engine.last_reports(),
            "alerts": self.alerts.status(),
            "journal": self.journal.stats(),
        }
