"""Time-series store sampling a :class:`MetricsRegistry` at fixed cadence.

The :class:`MetricsRegistry` (``repro.obs.metrics``) answers *what is
happening now*: every ``snapshot()`` is a point-in-time scrape.  The
:class:`Timeline` turns that into *what has been happening*: a background
sampler thread scrapes the registry every ``interval_s`` seconds and appends
one point per series into a bounded ring buffer, deriving the shapes that
downstream consumers (SLO evaluation, alert rules, drift detectors, the
``obs watch`` dashboard) actually need:

* **counters** are stored with their lifetime ``value`` plus the per-interval
  ``delta`` and ``rate`` (per second) against the previous sample, so rules
  can watch "failures per second" instead of a forever-growing total;
* **histograms** keep the windowed percentiles (``p50``/``p95``/``p99``/
  ``mean``) plus the lifetime observation ``count`` with its ``delta``/
  ``rate``;
* **gauges** keep the raw ``value``.

Series identity matches the registry: ``(name, sorted(labels))``.  A series
that disappears from the registry (e.g. a retired route) keeps its recorded
history but stops growing; a counter that restarts from zero clamps its
delta at zero rather than reporting a negative rate.

Everything is stdlib-only and thread-safe.  ``sample_once(now=...)`` is
public so tests and benchmarks can drive the timeline deterministically with
a synthetic clock instead of the background thread.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque

from .metrics import MetricsRegistry

TIMELINE_SCHEMA = "repro.obs.timeline.v1"

DEFAULT_INTERVAL_S = 0.5
DEFAULT_RETENTION = 600  # points per series (~5 min at default cadence)

_HIST_FIELDS = ("p50", "p95", "p99", "mean")


class TimelineError(ValueError):
    """Raised on invalid timeline queries or configuration."""


def _label_key(labels):
    return tuple(sorted((labels or {}).items()))


class _SeriesBuffer:
    """Ring buffer of sampled points for one ``(name, labels)`` series."""

    __slots__ = ("name", "labels", "kind", "points", "last_value", "last_t")

    def __init__(self, name, labels, kind, retention):
        self.name = name
        self.labels = dict(labels or {})
        self.kind = kind
        self.points = deque(maxlen=retention)
        self.last_value = None  # previous lifetime counter/count for deltas
        self.last_t = None

    def append(self, now, entry):
        point = {"t": now}
        if self.kind == "counter":
            value = float(entry.get("value", 0.0))
            point["value"] = value
            point["delta"], point["rate"] = self._step(now, value)
        elif self.kind == "histogram":
            summ = entry.get("summary") or {}
            count = float(summ.get("count", 0.0))
            point["count"] = count
            point["delta"], point["rate"] = self._step(now, count)
            for field in _HIST_FIELDS:
                if field in summ:
                    point[field] = summ[field]
            if "window" in summ:
                point["window"] = summ["window"]
        else:  # gauge
            point["value"] = float(entry.get("value", 0.0))
        self.points.append(point)
        self.last_t = now

    def _step(self, now, value):
        if self.last_value is None:
            delta = 0.0
        else:
            # clamp: a counter reset (worker restart) must not yield a
            # negative rate
            delta = max(0.0, value - self.last_value)
        self.last_value = value
        if self.last_t is None or now <= self.last_t:
            rate = 0.0
        else:
            rate = delta / (now - self.last_t)
        return delta, rate


class Timeline:
    """Background sampler turning registry snapshots into ring-buffer series.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to scrape.
    interval_s:
        Sampling cadence for the background thread.
    retention:
        Maximum points kept per series (ring buffer length).
    max_series:
        Hard bound on distinct series tracked; excess series are counted in
        ``dropped_series`` and skipped, mirroring the registry's own
        cardinality bound.
    clock:
        Timestamp source (``time.time`` by default); injectable for tests.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = DEFAULT_INTERVAL_S,
        retention: int = DEFAULT_RETENTION,
        max_series: int = 1024,
        clock=time.time,
    ):
        if interval_s <= 0:
            raise TimelineError(f"interval_s must be > 0, got {interval_s}")
        if retention < 2:
            raise TimelineError(f"retention must be >= 2, got {retention}")
        self.registry = registry
        self.interval_s = float(interval_s)
        self.retention = int(retention)
        self.max_series = int(max_series)
        self.clock = clock
        self._series = {}  # (name, label_key) -> _SeriesBuffer
        self._listeners = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = None
        self.samples = 0
        self.sample_errors = 0
        self.listener_errors = 0
        self.dropped_series = 0
        self.last_sample_ms = 0.0

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background sampler thread (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-timeline", daemon=True
        )
        self._thread.start()

    def stop(self, final_sample: bool = True, timeout: float = 5.0) -> None:
        """Stop the sampler; optionally take one last sample first."""
        thread = self._thread
        self._stop.set()
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        if final_sample:
            try:
                self.sample_once()
            except Exception:
                self.sample_errors += 1

    def add_listener(self, fn) -> None:
        """Register ``fn(timeline, now)`` to run after every sample.

        Listener exceptions are counted in ``listener_errors`` and never
        kill the sampler thread.
        """
        self._listeners.append(fn)

    def _run(self) -> None:
        while not self._stop.is_set():
            started = time.perf_counter()
            try:
                self.sample_once()
            except Exception:
                self.sample_errors += 1
            elapsed = time.perf_counter() - started
            self._stop.wait(max(0.0, self.interval_s - elapsed))

    # -- sampling ------------------------------------------------------

    def sample_once(self, now: float | None = None) -> int:
        """Scrape the registry once; returns the number of series sampled.

        ``now`` overrides the timestamp — benchmarks and tests use this to
        drive the timeline on a deterministic synthetic clock.
        """
        if now is None:
            now = self.clock()
        started = time.perf_counter()
        # Snapshot outside the timeline lock: registry collectors may take
        # other locks (e.g. the serving server's) and must not nest inside
        # ours.
        entries = self.registry.snapshot()["series"]
        sampled = 0
        with self._lock:
            for entry in entries:
                key = (entry["name"], _label_key(entry.get("labels")))
                buf = self._series.get(key)
                if buf is None:
                    if len(self._series) >= self.max_series:
                        self.dropped_series += 1
                        continue
                    buf = _SeriesBuffer(
                        entry["name"],
                        entry.get("labels"),
                        entry.get("kind", "gauge"),
                        self.retention,
                    )
                    self._series[key] = buf
                buf.append(now, entry)
                sampled += 1
            self.samples += 1
        for fn in list(self._listeners):
            try:
                fn(self, now)
            except Exception:
                self.listener_errors += 1
        self.last_sample_ms = (time.perf_counter() - started) * 1000.0
        return sampled

    # -- queries -------------------------------------------------------

    def series(self):
        """List tracked series: ``[{name, labels, kind, points}]``."""
        with self._lock:
            return [
                {
                    "name": buf.name,
                    "labels": dict(buf.labels),
                    "kind": buf.kind,
                    "points": len(buf.points),
                }
                for buf in self._series.values()
            ]

    def _match(self, name, labels):
        if labels is not None:
            buf = self._series.get((name, _label_key(labels)))
            return [buf] if buf is not None else []
        return [buf for (n, _), buf in self._series.items() if n == name]

    def query(self, name, labels=None, since=None, until=None):
        """Points for one series, oldest first.

        With ``labels=None`` the name must be unambiguous (exactly one label
        set); pass explicit labels otherwise.  ``since``/``until`` bound the
        timestamps (inclusive).
        """
        with self._lock:
            matches = self._match(name, labels)
            if not matches:
                return []
            if len(matches) > 1:
                sets = [m.labels for m in matches]
                raise TimelineError(
                    f"series {name!r} is ambiguous across label sets {sets}; "
                    "pass labels="
                )
            pts = list(matches[0].points)
        if since is not None:
            pts = [p for p in pts if p["t"] >= since]
        if until is not None:
            pts = [p for p in pts if p["t"] <= until]
        return pts

    def values(self, name, labels=None, field="value", since=None, until=None):
        """``[(t, float)]`` for one field of one series, skipping absent fields."""
        out = []
        for p in self.query(name, labels, since=since, until=until):
            v = p.get(field)
            if v is not None:
                out.append((p["t"], float(v)))
        return out

    def latest(self, name, labels=None, field="value"):
        """Most recent value of a field, or ``None``."""
        vals = self.values(name, labels, field)
        return vals[-1][1] if vals else None

    # -- export --------------------------------------------------------

    def stats(self):
        with self._lock:
            n = len(self._series)
        return {
            "schema": TIMELINE_SCHEMA,
            "interval_s": self.interval_s,
            "retention": self.retention,
            "running": self.running,
            "series": n,
            "samples": self.samples,
            "sample_errors": self.sample_errors,
            "listener_errors": self.listener_errors,
            "dropped_series": self.dropped_series,
            "last_sample_ms": round(self.last_sample_ms, 4),
        }

    def to_dict(self, since=None):
        """Full dump: ``{schema, interval_s, series: [{name, labels, kind, points}]}``."""
        with self._lock:
            series = [
                {
                    "name": buf.name,
                    "labels": dict(buf.labels),
                    "kind": buf.kind,
                    "points": [dict(p) for p in buf.points],
                }
                for buf in self._series.values()
            ]
        if since is not None:
            for s in series:
                s["points"] = [p for p in s["points"] if p["t"] >= since]
        return {
            "schema": TIMELINE_SCHEMA,
            "interval_s": self.interval_s,
            "series": series,
        }

    def export_json(self, path=None, since=None):
        """Serialize :meth:`to_dict` to a JSON string (and optionally a file)."""
        doc = json.dumps(self.to_dict(since=since), indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(doc + "\n")
        return doc

    def export_jsonl(self, path, since=None) -> int:
        """Write one self-describing JSON line per point; returns lines written.

        Each line embeds ``name``/``labels``/``kind`` alongside the point
        fields so the file streams straight into offline analysis without a
        side table.
        """
        doc = self.to_dict(since=since)
        written = 0
        with open(path, "w", encoding="utf-8") as fh:
            for s in doc["series"]:
                head = {"name": s["name"], "labels": s["labels"], "kind": s["kind"]}
                for p in s["points"]:
                    rec = dict(head)
                    rec.update(p)
                    fh.write(json.dumps(rec, sort_keys=True) + "\n")
                    written += 1
        return written
