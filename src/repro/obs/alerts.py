"""Alert rules, statistical drift detectors, and the persisted event journal.

Three rule families watch the :class:`Timeline`:

:class:`ThresholdRule`
    Classic level alert with ``for``-duration hysteresis: the rule must be
    violating continuously for ``for_s`` seconds before it transitions
    ``ok -> pending -> firing``; recovery emits a ``resolved`` event.

:class:`BurnRateRule`
    Fires when a named :class:`~repro.obs.slo.Slo` reports ``breaching``
    (both burn windows over the limit), with the same hysteresis.

:class:`DriftRule`
    Statistical change detection on a series field, using either an online
    **Page–Hinkley** test (self-normalizing, one-sided or two-sided) or a
    **rolling-mean shift** test (recent short-window mean vs a frozen
    reference window, z-scored by the reference std).  Drift detections are
    instantaneous events, not levels: the rule fires one ``drift`` event,
    resets its detector, and goes back to watching.

Every state transition is appended to an :class:`EventJournal`: a bounded
in-memory deque plus (optionally) an append-only JSONL file, the same
journal the fleet layer uses for deploy/swap/canary lifecycle events.  Each
line is a self-describing JSON object with ``schema``/``seq``/``ts``/
``kind`` keys.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque

EVENT_SCHEMA = "repro.obs.events.v1"

_REQUIRED_EVENT_KEYS = ("schema", "seq", "ts", "kind")

_OPS = {
    "le": lambda v, t: v <= t,
    "lt": lambda v, t: v < t,
    "ge": lambda v, t: v >= t,
    "gt": lambda v, t: v > t,
}


class AlertError(ValueError):
    """Raised on invalid rule definitions or malformed journal lines."""


# ---------------------------------------------------------------------------
# event journal
# ---------------------------------------------------------------------------


class EventJournal:
    """Bounded in-memory event log with optional JSONL persistence.

    ``append`` stamps each event with a monotonically increasing ``seq``
    and wall-clock ``ts``, keeps the last ``capacity`` events in memory,
    and (when ``path`` is set) appends one JSON line per event to the
    file, flushing after every write so a crash loses at most the line
    being written.
    """

    def __init__(self, path=None, capacity: int = 1024, clock=time.time):
        self.path = str(path) if path is not None else None
        self.capacity = int(capacity)
        self.clock = clock
        self._events = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._fh = None
        self._seq = 0
        self.write_errors = 0
        if self.path is not None:
            self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, kind: str, **fields):
        """Record one event; returns the stamped event dict."""
        with self._lock:
            self._seq += 1
            event = {
                "schema": EVENT_SCHEMA,
                "seq": self._seq,
                "ts": round(self.clock(), 6),
                "kind": kind,
            }
            for k, v in fields.items():
                if k not in event:
                    event[k] = v
            self._events.append(event)
            if self._fh is not None:
                try:
                    self._fh.write(json.dumps(event, sort_keys=True) + "\n")
                    self._fh.flush()
                except (OSError, ValueError):
                    self.write_errors += 1
            return event

    def events(self, limit=None, kind=None):
        """Most-recent-last view of buffered events, optionally filtered."""
        with self._lock:
            out = list(self._events)
        if kind is not None:
            out = [e for e in out if e.get("kind") == kind]
        if limit is not None:
            out = out[-int(limit):]
        return out

    def __len__(self):
        with self._lock:
            return len(self._events)

    @property
    def seq(self) -> int:
        with self._lock:
            return self._seq

    def stats(self):
        with self._lock:
            return {
                "events": len(self._events),
                "seq": self._seq,
                "path": self.path,
                "write_errors": self.write_errors,
            }

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                finally:
                    self._fh = None

    # -- offline side --------------------------------------------------

    @staticmethod
    def validate_line(line: str):
        """Parse one journal line, raising :class:`AlertError` if malformed."""
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise AlertError(f"malformed journal line: {exc}") from exc
        if not isinstance(event, dict):
            raise AlertError("journal line is not a JSON object")
        missing = [k for k in _REQUIRED_EVENT_KEYS if k not in event]
        if missing:
            raise AlertError(f"journal line missing keys {missing}")
        if event["schema"] != EVENT_SCHEMA:
            raise AlertError(f"unexpected journal schema {event['schema']!r}")
        return event

    @classmethod
    def read(cls, path, limit=None, kind=None, strict=False):
        """Read events back from a JSONL journal file.

        Malformed lines are skipped (or raise, with ``strict=True``).
        """
        events = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(cls.validate_line(line))
                except AlertError:
                    if strict:
                        raise
        if kind is not None:
            events = [e for e in events if e.get("kind") == kind]
        if limit is not None:
            events = events[-int(limit):]
        return events


# ---------------------------------------------------------------------------
# drift detectors
# ---------------------------------------------------------------------------


class PageHinkley:
    """Online Page–Hinkley change detector with self-normalization.

    Observations are standardized against a running mean/std (Welford)
    before the PH statistic is updated, so ``delta`` (drift tolerance) and
    ``lamb`` (alarm threshold) are in units of the series' own sigma —
    scale-free across millisecond latencies and unit error rates.  With
    ``direction="up"`` only upward shifts alarm (the right default for
    latency); ``"down"`` and ``"both"`` are symmetric.

    The defaults are deliberately conservative: sampled serving series are
    autocorrelated (consecutive percentile points share most of their
    reservoir window), which inflates the PH cumulative sum relative to
    the i.i.d. theory — a low ``lamb`` false-fires on calm traffic.
    Tighten (``lamb≈12``) only for series whose points are independent,
    e.g. per-interval windows.
    """

    def __init__(self, delta: float = 0.5, lamb: float = 15.0,
                 min_samples: int = 20, direction: str = "up",
                 clamp: float = 10.0):
        if direction not in ("up", "down", "both"):
            raise AlertError(f"unknown direction {direction!r}")
        self.delta = float(delta)
        self.lamb = float(lamb)
        self.min_samples = int(min_samples)
        self.direction = direction
        self.clamp = float(clamp)
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._cum_up = 0.0
        self._min_cum_up = 0.0
        self._cum_dn = 0.0
        self._max_cum_dn = 0.0

    @property
    def statistic(self) -> float:
        up = self._cum_up - self._min_cum_up
        dn = self._max_cum_dn - self._cum_dn
        if self.direction == "up":
            return up
        if self.direction == "down":
            return dn
        return max(up, dn)

    def update(self, x: float) -> bool:
        """Feed one observation; returns ``True`` when a shift is detected."""
        if self.n >= 2:
            std = math.sqrt(self._m2 / (self.n - 1))
            z = (x - self._mean) / std if std > 1e-12 else 0.0
            z = max(-self.clamp, min(self.clamp, z))
        else:
            z = 0.0
        # Welford update with the raw value (baseline keeps adapting slowly)
        self.n += 1
        d = x - self._mean
        self._mean += d / self.n
        self._m2 += d * (x - self._mean)
        if self.n <= self.min_samples:
            return False
        self._cum_up += z - self.delta
        self._min_cum_up = min(self._min_cum_up, self._cum_up)
        self._cum_dn += z + self.delta
        self._max_cum_dn = max(self._max_cum_dn, self._cum_dn)
        return self.statistic > self.lamb


class RollingMeanShift:
    """Shift test: recent short-window mean vs a frozen reference window.

    Keeps the last ``long + short`` observations; the oldest ``long`` form
    the reference, the newest ``short`` the probe.  Alarms when the probe
    mean deviates from the reference mean by more than ``z_threshold``
    reference standard deviations (``min_std`` guards constant series).
    """

    def __init__(self, short: int = 3, long: int = 24,
                 z_threshold: float = 4.0, direction: str = "up",
                 min_std: float = 1e-9):
        if short < 1 or long < 2:
            raise AlertError("need short >= 1 and long >= 2")
        if direction not in ("up", "down", "both"):
            raise AlertError(f"unknown direction {direction!r}")
        self.short = int(short)
        self.long = int(long)
        self.z_threshold = float(z_threshold)
        self.direction = direction
        self.min_std = float(min_std)
        self.reset()

    def reset(self) -> None:
        self._window = deque(maxlen=self.short + self.long)
        self.last_z = 0.0

    @property
    def n(self) -> int:
        return len(self._window)

    @property
    def statistic(self) -> float:
        return self.last_z

    def update(self, x: float) -> bool:
        self._window.append(x)
        if len(self._window) < self.short + self.long:
            return False
        vals = list(self._window)
        ref, probe = vals[: self.long], vals[self.long:]
        ref_mean = sum(ref) / len(ref)
        ref_var = sum((v - ref_mean) ** 2 for v in ref) / max(1, len(ref) - 1)
        ref_std = max(math.sqrt(ref_var), self.min_std)
        z = (sum(probe) / len(probe) - ref_mean) / ref_std
        self.last_z = z
        if self.direction == "up":
            return z > self.z_threshold
        if self.direction == "down":
            return z < -self.z_threshold
        return abs(z) > self.z_threshold


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------


class _Rule:
    """Shared rule surface: ``check`` returns ``(value, violating)``."""

    #: instantaneous rules emit one event per detection and never latch
    instantaneous = False
    event_kind = "alert"

    def __init__(self, name, for_s=0.0, description=""):
        self.name = name
        self.for_s = float(for_s)
        self.description = description

    def check(self, timeline, slo_reports, now):  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self):
        return {"rule": self.name, "type": type(self).__name__,
                "for_s": self.for_s}


class ThresholdRule(_Rule):
    """Level alert on one series field: ``field op threshold`` ⇒ violating."""

    def __init__(self, name, series, *, field="value", labels=None,
                 op="gt", threshold=0.0, for_s=0.0, description=""):
        super().__init__(name, for_s=for_s, description=description)
        if op not in _OPS:
            raise AlertError(f"rule {name!r}: unknown op {op!r}")
        self.series = series
        self.field = field
        self.labels = labels
        self.op = op
        self.threshold = float(threshold)

    def check(self, timeline, slo_reports, now):
        value = timeline.latest(self.series, self.labels, self.field)
        if value is None:
            return None, False
        return value, _OPS[self.op](value, self.threshold)

    def describe(self):
        d = super().describe()
        d.update(series=self.series, field=self.field, op=self.op,
                 threshold=self.threshold)
        return d


class BurnRateRule(_Rule):
    """Fires while the named SLO reports ``breaching`` in its last evaluation."""

    def __init__(self, name, slo_name, *, for_s=0.0, description=""):
        super().__init__(name, for_s=for_s, description=description)
        self.slo_name = slo_name

    def check(self, timeline, slo_reports, now):
        for report in slo_reports:
            if report.get("slo") == self.slo_name:
                return report["fast"]["burn_rate"], bool(report["breaching"])
        return None, False

    def describe(self):
        d = super().describe()
        d["slo"] = self.slo_name
        return d


class DriftRule(_Rule):
    """Statistical drift watch on one series field.

    ``detector="page_hinkley"`` (default) or ``"rolling_mean"``; extra
    keyword arguments are forwarded to the detector constructor.  The rule
    consumes only points newer than the last one it has seen, so evaluation
    cadence and sampling cadence may differ freely.
    """

    instantaneous = True
    event_kind = "drift"

    def __init__(self, name, series, *, field="p95", labels=None,
                 detector="page_hinkley", description="", **detector_kw):
        super().__init__(name, for_s=0.0, description=description)
        self.series = series
        self.field = field
        self.labels = labels
        self.detector_name = detector
        if detector == "page_hinkley":
            self.detector = PageHinkley(**detector_kw)
        elif detector == "rolling_mean":
            self.detector = RollingMeanShift(**detector_kw)
        else:
            raise AlertError(f"rule {name!r}: unknown detector {detector!r}")
        self._last_t = None
        self.detections = 0

    def check(self, timeline, slo_reports, now):
        points = timeline.values(self.series, self.labels, self.field,
                                 since=None)
        fired = False
        value = None
        for t, v in points:
            if self._last_t is not None and t <= self._last_t:
                continue
            self._last_t = t
            value = v
            if self.detector.update(v):
                fired = True
        if fired:
            self.detections += 1
            self.detector.reset()
        return value, fired

    def describe(self):
        d = super().describe()
        d.update(series=self.series, field=self.field,
                 detector=self.detector_name, detections=self.detections)
        return d


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class AlertEngine:
    """Evaluates rules against the timeline, tracking pending/firing state.

    Level rules (threshold, burn-rate) follow ``ok -> pending -> firing``:
    a rule must be violating continuously for its ``for_s`` before firing
    (``for_s=0`` fires on the first violating evaluation), and a firing
    rule emits a ``resolved`` event when the condition clears.
    Instantaneous rules (drift) emit one event per detection and return to
    ``ok``.  Transitions are appended to the journal (when present) with
    ``kind="alert"``/``"drift"``.
    """

    def __init__(self, timeline, rules=(), slo_engine=None, journal=None):
        self.timeline = timeline
        self.rules = list(rules)
        self.slo_engine = slo_engine
        self.journal = journal
        self._states = {}  # rule name -> {"state", "since", "value"}
        self.evaluations = 0
        self.fired = 0
        self.resolved = 0
        self.rule_errors = 0

    def add_rule(self, rule) -> None:
        self.rules.append(rule)

    def _emit(self, rule, state, value, now, extra=None):
        if self.journal is None:
            return
        event = {"rule": rule.name, "state": state}
        if value is not None:
            event["value"] = round(float(value), 6)
        if rule.description:
            event["description"] = rule.description
        event.update(rule.describe())
        if extra:
            event.update(extra)
        self.journal.append(rule.event_kind, **event)

    def evaluate(self, now=None):
        """Run every rule once; returns the current per-rule status list."""
        if now is None:
            now = self.timeline.clock()
        slo_reports = (
            self.slo_engine.evaluate(now) if self.slo_engine is not None else []
        )
        self.evaluations += 1
        statuses = []
        for rule in self.rules:
            entry = self._states.setdefault(
                rule.name, {"state": "ok", "since": None, "value": None}
            )
            try:
                value, violating = rule.check(self.timeline, slo_reports, now)
            except Exception:
                self.rule_errors += 1
                value, violating = None, False
            entry["value"] = value
            if rule.instantaneous:
                if violating:
                    self.fired += 1
                    self._emit(rule, "fired", value, now)
            else:
                state = entry["state"]
                if violating:
                    if state == "ok":
                        entry["since"] = now
                        state = "pending"
                    if state == "pending" and now - entry["since"] >= rule.for_s:
                        state = "firing"
                        self.fired += 1
                        self._emit(rule, "firing", value, now,
                                   {"pending_s": round(now - entry["since"], 3)})
                else:
                    if state == "firing":
                        self.resolved += 1
                        self._emit(rule, "resolved", value, now)
                    state = "ok"
                    entry["since"] = None
                entry["state"] = state
            statuses.append(self.status_of(rule))
        return statuses

    def status_of(self, rule):
        entry = self._states.get(rule.name, {"state": "ok", "since": None,
                                             "value": None})
        status = rule.describe()
        status["state"] = entry["state"] if not rule.instantaneous else "watch"
        value = entry.get("value")
        if value is not None:
            status["value"] = round(float(value), 6)
        return status

    def status(self):
        return {
            "evaluations": self.evaluations,
            "fired": self.fired,
            "resolved": self.resolved,
            "rule_errors": self.rule_errors,
            "rules": [self.status_of(rule) for rule in self.rules],
        }

    def firing(self):
        """Names of level rules currently in the firing state."""
        return [name for name, e in self._states.items()
                if e["state"] == "firing"]
