"""Declarative SLOs evaluated over a :class:`Timeline` with burn rates.

An :class:`Slo` states an objective about served traffic — "p95 request
latency stays at or under 25 ms for 95% of samples", "at least 99% of
requests succeed" — and is evaluated continuously against the timeline
using the multi-window burn-rate model from Prometheus/SRE practice:

* the **error budget** is ``1 - target`` (a 0.95 target leaves a 5% budget);
* the **bad fraction** of a window is the share of that window that violates
  the objective;
* the **burn rate** of a window is ``bad_fraction / budget`` — 1.0 means the
  budget is being consumed exactly as fast as it accrues, higher means it
  will be exhausted early;
* an SLO is **breaching** only when *both* a fast and a slow window burn
  above ``max_burn_rate``: the slow window filters out blips, the fast
  window guarantees the problem is still happening now.

Two objective kinds cover the serving stack:

``threshold``
    Classifies each sampled point of one series field (e.g. the ``p95``
    field of ``serve_request_latency_ms``) as good/bad against a threshold.

``ratio``
    Sums per-interval counter deltas of a numerator (bad events) over a
    denominator (total events) — the natural shape for request error rates,
    using ``serve_requests_total{status=...}`` deltas from the timeline.

Reports are plain JSON-serializable dicts so they flow straight into
``stats()``, the CLI, and the event journal.
"""

from __future__ import annotations

SLO_SCHEMA = "repro.obs.slo.v1"

_OPS = {
    "le": lambda v, t: v <= t,
    "lt": lambda v, t: v < t,
    "ge": lambda v, t: v >= t,
    "gt": lambda v, t: v > t,
}


class SloError(ValueError):
    """Raised on invalid SLO definitions."""


def _spec_list(spec):
    """Normalize a series spec into ``[(name, labels-or-None)]``."""
    if spec is None:
        return []
    if isinstance(spec, str):
        return [(spec, None)]
    if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str):
        return [spec]
    return [(s, None) if isinstance(s, str) else tuple(s) for s in spec]


class Slo:
    """One declarative objective with fast/slow burn-rate windows.

    Threshold kind: ``Slo("latency", series="serve_request_latency_ms",
    field="p95", threshold=25.0, op="le", target=0.95)`` — good when the
    field satisfies ``op`` vs ``threshold``.

    Ratio kind: ``Slo("errors", numerator=("serve_requests_total",
    {"status": "failed"}), denominator=[...], target=0.99)`` — the bad
    fraction is ``sum(numerator deltas) / sum(denominator deltas)`` per
    window.
    """

    def __init__(
        self,
        name,
        *,
        series=None,
        field="value",
        labels=None,
        threshold=None,
        op="le",
        target=0.95,
        numerator=None,
        denominator=None,
        fast_window_s=15.0,
        slow_window_s=120.0,
        max_burn_rate=2.0,
        min_samples=3,
        description="",
    ):
        self.name = name
        self.kind = "ratio" if numerator is not None else "threshold"
        if self.kind == "threshold":
            if series is None or threshold is None:
                raise SloError(
                    f"slo {name!r}: threshold kind needs series= and threshold="
                )
            if op not in _OPS:
                raise SloError(f"slo {name!r}: unknown op {op!r}")
        else:
            if denominator is None:
                raise SloError(f"slo {name!r}: ratio kind needs denominator=")
        if not (0.0 < target < 1.0):
            raise SloError(f"slo {name!r}: target must be in (0, 1), got {target}")
        if fast_window_s <= 0 or slow_window_s < fast_window_s:
            raise SloError(
                f"slo {name!r}: need 0 < fast_window_s <= slow_window_s"
            )
        self.series = series
        self.field = field
        self.labels = labels
        self.threshold = threshold
        self.op = op
        self.target = float(target)
        self.numerator = _spec_list(numerator)
        self.denominator = _spec_list(denominator)
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = float(slow_window_s)
        self.max_burn_rate = float(max_burn_rate)
        self.min_samples = int(min_samples)
        self.description = description

    # -- convenience constructors --------------------------------------

    @classmethod
    def latency(cls, name, threshold_ms, *, series="serve_request_latency_ms",
                field="p95", route=None, **kw):
        """p-quantile latency objective on a (route) latency histogram."""
        labels = {"route": route} if route is not None else None
        if route is not None and series == "serve_request_latency_ms":
            series = "serve_route_latency_ms"
        return cls(name, series=series, field=field, labels=labels,
                   threshold=threshold_ms, op="le", **kw)

    @classmethod
    def error_rate(cls, name, *, target=0.99,
                   failed=("serve_requests_total", {"status": "failed"}),
                   total=(("serve_requests_total", {"status": "completed"}),
                          ("serve_requests_total", {"status": "failed"})),
                   **kw):
        """Request success-rate objective from status counter deltas."""
        return cls(name, numerator=failed, denominator=total, target=target, **kw)

    # -- evaluation ----------------------------------------------------

    def _bad_fraction_threshold(self, timeline, since, until):
        good = _OPS[self.op]
        pts = timeline.values(self.series, self.labels, self.field,
                              since=since, until=until)
        n = len(pts)
        bad = sum(1 for _, v in pts if not good(v, self.threshold))
        return (bad / n if n else 0.0), n

    def _sum_deltas(self, timeline, specs, since, until):
        total = 0.0
        for name, labels in specs:
            for _, d in timeline.values(name, labels, "delta",
                                        since=since, until=until):
                total += d
        return total

    def _bad_fraction_ratio(self, timeline, since, until):
        num = self._sum_deltas(timeline, self.numerator, since, until)
        den = self._sum_deltas(timeline, self.denominator, since, until)
        if den <= 0.0:
            return 0.0, 0
        return min(1.0, num / den), int(den)

    def evaluate(self, timeline, now):
        """Evaluate against the timeline; returns a JSON-serializable report."""
        budget = 1.0 - self.target
        windows = {}
        for label, span in (("fast", self.fast_window_s),
                            ("slow", self.slow_window_s)):
            since = now - span
            if self.kind == "threshold":
                bad, n = self._bad_fraction_threshold(timeline, since, now)
            else:
                bad, n = self._bad_fraction_ratio(timeline, since, now)
            windows[label] = {
                "window_s": span,
                "samples": n,
                "bad_fraction": round(bad, 6),
                "burn_rate": round(bad / budget, 4),
            }
        fast, slow = windows["fast"], windows["slow"]
        breaching = (
            fast["samples"] >= self.min_samples
            and fast["burn_rate"] >= self.max_burn_rate
            and slow["burn_rate"] >= self.max_burn_rate
        )
        report = {
            "slo": self.name,
            "kind": self.kind,
            "target": self.target,
            "budget": round(budget, 6),
            "max_burn_rate": self.max_burn_rate,
            "fast": fast,
            "slow": slow,
            # budget remaining over the slow (accounting) window: 1.0 means
            # untouched, 0.0 means fully consumed at the window's scale
            "budget_remaining": round(max(0.0, 1.0 - slow["burn_rate"]), 4),
            "breaching": breaching,
        }
        if self.kind == "threshold":
            report["series"] = self.series
            report["field"] = self.field
            report["threshold"] = self.threshold
            report["op"] = self.op
            current = timeline.latest(self.series, self.labels, self.field)
            if current is not None:
                report["current"] = round(current, 4)
        if self.labels:
            # Attribution for downstream consumers: a route-scoped SLO
            # (e.g. Slo.latency(route=...)) carries its label set, so
            # the admission shedder can target the breaching route.
            report["labels"] = dict(self.labels)
        if self.description:
            report["description"] = self.description
        return report


class SloEngine:
    """Evaluates a set of :class:`Slo` objectives over one timeline."""

    def __init__(self, timeline, slos=()):
        self.timeline = timeline
        self.slos = list(slos)
        self.evaluations = 0
        self._last_reports = []

    def add(self, slo: Slo) -> None:
        self.slos.append(slo)

    def evaluate(self, now=None):
        """Evaluate every SLO; returns (and caches) the list of reports."""
        if now is None:
            now = self.timeline.clock()
        reports = [slo.evaluate(self.timeline, now) for slo in self.slos]
        self.evaluations += 1
        self._last_reports = reports
        return reports

    def last_reports(self):
        """Reports from the most recent :meth:`evaluate` call."""
        return list(self._last_reports)

    def breaching(self):
        """Names of SLOs breaching as of the last evaluation."""
        return [r["slo"] for r in self._last_reports if r["breaching"]]
