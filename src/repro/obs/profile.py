"""Opt-in per-phase compute profiling for inference sessions.

:class:`SessionProfiler` is a tiny accumulator an ``InferenceSession``
(or ``QuantizedSession``) consults inline in ``predict``: when
``session._profiler`` is ``None`` (the default — it lives in the
session's scratch set, so it is never pickled and resets on restore)
the hot path pays one attribute check per phase; when attached, each
phase records call count + wall time.  Phase names follow the engine's
structure: ``patch_gather``, ``embed``, ``block{i}``,
``final_norm_pool``, ``head``.

The worker loop attaches a profiler per restored session when the
server is constructed with ``profile=True`` and drains the per-batch
phase totals into the trace timing it ships back, so a request trace
can descend *into* its compute span.  Shape-level identity comes from
:meth:`InferenceSession.gemm_sites`, which reuses the kernel layer's
autotuned plan identities.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["SessionProfiler", "attach_profiler", "detach_profiler",
           "profile_predict"]


class SessionProfiler:
    """Accumulates per-phase call counts and wall time (seconds)."""

    __slots__ = ("_phases",)

    def __init__(self) -> None:
        self._phases: dict[str, list] = {}

    def lap(self, name: str, started: float) -> float:
        """Record ``now - started`` under ``name``; return ``now`` so the
        caller chains laps: ``t0 = prof.lap("embed", t0)``."""
        now = time.perf_counter()
        slot = self._phases.get(name)
        if slot is None:
            self._phases[name] = [1, now - started]
        else:
            slot[0] += 1
            slot[1] += now - started
        return now

    def add(self, name: str, elapsed_s: float) -> None:
        slot = self._phases.get(name)
        if slot is None:
            self._phases[name] = [1, float(elapsed_s)]
        else:
            slot[0] += 1
            slot[1] += float(elapsed_s)

    def summary(self) -> dict:
        """Phase name -> {"calls", "total_ms"}; non-destructive."""
        return {name: {"calls": slot[0], "total_ms": slot[1] * 1e3}
                for name, slot in self._phases.items()}

    def drain(self) -> dict:
        """Like :meth:`summary` but resets the accumulator — the worker
        loop drains once per batch so phases never leak across traces."""
        out = self.summary()
        self._phases.clear()
        return out

    def __bool__(self) -> bool:  # truthy even when empty, like any profiler
        return True


def attach_profiler(session) -> SessionProfiler:
    """Attach a fresh profiler to ``session`` and return it."""
    profiler = SessionProfiler()
    session._profiler = profiler
    return profiler


def detach_profiler(session) -> Optional[SessionProfiler]:
    """Detach and return the session's profiler (``None`` if absent)."""
    profiler = getattr(session, "_profiler", None)
    session._profiler = None
    return profiler


def profile_predict(session, images, repeats: int = 1) -> dict:
    """Run ``session.predict(images)`` ``repeats`` times under a
    profiler and return ``{"phases", "gemm_sites", "elapsed_ms"}``.

    Convenience for the CLI / benchmarks; restores the session's prior
    profiler state afterwards.
    """
    previous = getattr(session, "_profiler", None)
    profiler = attach_profiler(session)
    start = time.perf_counter()
    try:
        for _ in range(max(1, int(repeats))):
            session.predict(images)
    finally:
        session._profiler = previous
    elapsed_ms = (time.perf_counter() - start) * 1e3
    sites = session.gemm_sites() if hasattr(session, "gemm_sites") else []
    return {"phases": profiler.summary(), "gemm_sites": sites,
            "elapsed_ms": elapsed_ms}
