"""repro.obs — observability spine for the serving stack.

Three pieces, all zero-dependency:

* :mod:`repro.obs.trace` — per-request span tracing (enqueue ->
  batch_form -> transport write -> worker_recv -> compute -> transport
  read -> complete) with configurable sampling, a bounded in-memory
  buffer, and JSON / Chrome ``trace_event`` export.
* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram primitives, a
  labeled :class:`MetricsRegistry` with collector support and bounded
  cardinality, JSON snapshot + Prometheus text exporters.
* :mod:`repro.obs.profile` — opt-in per-phase compute profiling inside
  the fused inference engine, so traces can descend into the compute
  span.
"""

from repro.obs.metrics import (METRICS_SCHEMA, Counter, Gauge, Histogram,
                               MetricsError, MetricsRegistry)
from repro.obs.profile import (SessionProfiler, attach_profiler,
                               detach_profiler, profile_predict)
from repro.obs.trace import (SPAN_CHAIN, TRACE_SCHEMA, RequestTrace, Span,
                             Tracer, spans_from_stamps, to_chrome)

__all__ = [
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "SPAN_CHAIN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "RequestTrace",
    "SessionProfiler",
    "Span",
    "Tracer",
    "attach_profiler",
    "detach_profiler",
    "profile_predict",
    "spans_from_stamps",
    "to_chrome",
]
