"""repro.obs — observability spine for the serving stack.

Six pieces, all zero-dependency:

* :mod:`repro.obs.trace` — per-request span tracing (enqueue ->
  batch_form -> transport write -> worker_recv -> compute -> transport
  read -> complete) with configurable sampling, a bounded in-memory
  buffer, and JSON / Chrome ``trace_event`` export.
* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram primitives, a
  labeled :class:`MetricsRegistry` with collector support and bounded
  cardinality, JSON snapshot + Prometheus text exporters.
* :mod:`repro.obs.profile` — opt-in per-phase compute profiling inside
  the fused inference engine, so traces can descend into the compute
  span.
* :mod:`repro.obs.timeline` — a background sampler turning registry
  snapshots into bounded per-series ring buffers (counter deltas/rates,
  histogram windowed percentiles), queryable and JSON/JSONL-exportable.
* :mod:`repro.obs.slo` — declarative objectives evaluated over the
  timeline with multi-window burn rates and error-budget accounting.
* :mod:`repro.obs.alerts` — threshold / burn-rate / drift rules with
  ``for``-duration hysteresis and a persisted JSONL event journal;
  :mod:`repro.obs.monitor` composes all of it behind one lifecycle.
"""

from repro.obs.alerts import (EVENT_SCHEMA, AlertEngine, AlertError,
                              BurnRateRule, DriftRule, EventJournal,
                              PageHinkley, RollingMeanShift, ThresholdRule)
from repro.obs.metrics import (METRICS_SCHEMA, Counter, Gauge, Histogram,
                               MetricsError, MetricsRegistry)
from repro.obs.monitor import (MONITOR_SCHEMA, Monitor, default_serving_rules,
                               default_serving_slos)
from repro.obs.profile import (SessionProfiler, attach_profiler,
                               detach_profiler, profile_predict)
from repro.obs.slo import SLO_SCHEMA, Slo, SloEngine, SloError
from repro.obs.timeline import (TIMELINE_SCHEMA, Timeline, TimelineError)
from repro.obs.trace import (SPAN_CHAIN, TRACE_SCHEMA, RequestTrace, Span,
                             Tracer, spans_from_stamps, to_chrome)

__all__ = [
    "EVENT_SCHEMA",
    "METRICS_SCHEMA",
    "MONITOR_SCHEMA",
    "SLO_SCHEMA",
    "SPAN_CHAIN",
    "TIMELINE_SCHEMA",
    "TRACE_SCHEMA",
    "AlertEngine",
    "AlertError",
    "BurnRateRule",
    "Counter",
    "DriftRule",
    "EventJournal",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "Monitor",
    "PageHinkley",
    "RequestTrace",
    "RollingMeanShift",
    "SessionProfiler",
    "Slo",
    "SloEngine",
    "SloError",
    "Span",
    "ThresholdRule",
    "Timeline",
    "TimelineError",
    "Tracer",
    "attach_profiler",
    "default_serving_rules",
    "default_serving_slos",
    "detach_profiler",
    "profile_predict",
    "spans_from_stamps",
    "to_chrome",
]
