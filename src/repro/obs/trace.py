"""Per-request lifecycle tracing for the serving stack.

A traced request accumulates absolute ``time.perf_counter()`` stamps as
it crosses the serving layers; :func:`spans_from_stamps` turns the stamp
set into a **contiguous** span chain

    enqueue -> batch_form -> shm_write|pickle_write -> worker_recv
            -> compute -> shm_read|result_read -> complete

where each span starts exactly where the previous one ended, so the span
durations sum to the measured end-to-end latency by construction (the
acceptance gate asserts within 10%; residual slack comes only from the
stamps the client takes outside the server).

``perf_counter`` is CLOCK_MONOTONIC on Linux — system-wide, not
per-process — so parent-side and worker-side stamps live on the same
timeline and can be subtracted directly.

Sampling uses a deterministic fraction accumulator (the same scheme the
fleet canary router uses): ``acc += rate; if acc >= 1: acc -= 1 ->
sampled``.  At rate 1.0 every request is traced; at 0.25 exactly every
fourth.  When the rate is 0 the tracer reports ``enabled = False`` and
the serving hot path's only cost is one attribute check.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Optional

__all__ = [
    "TRACE_SCHEMA",
    "SPAN_CHAIN",
    "Span",
    "RequestTrace",
    "Tracer",
    "spans_from_stamps",
    "to_chrome",
]

#: Schema tag stamped on exported trace documents.
TRACE_SCHEMA = "repro.obs.trace.v1"

#: Canonical span order.  Transport-dependent slots hold one of the
#: alternatives; ``worker_recv``/``compute`` collapse into a single
#: ``compute`` span when the worker did not report its own stamps.
SPAN_CHAIN = (
    "enqueue",
    "batch_form",
    ("shm_write", "pickle_write"),
    "worker_recv",
    "compute",
    ("shm_read", "result_read"),
    "complete",
)


class Span:
    """One contiguous phase of a request's life, in perf_counter seconds."""

    __slots__ = ("name", "start", "end")

    def __init__(self, name: str, start: float, end: float) -> None:
        self.name = name
        self.start = float(start)
        self.end = float(end)

    @property
    def duration_ms(self) -> float:
        return (self.end - self.start) * 1e3

    def to_dict(self) -> dict:
        return {"name": self.name, "start": self.start, "end": self.end,
                "duration_ms": self.duration_ms}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Span(%s, %.3f ms)" % (self.name, self.duration_ms)


class RequestTrace:
    """A request's complete span chain plus identifying metadata."""

    __slots__ = ("request_id", "model", "n", "transport", "shard", "spans",
                 "compute_phases")

    def __init__(self, request_id: int, model: Optional[str], n: int,
                 transport: str, shard: Optional[int],
                 spans: list, compute_phases: Optional[dict] = None) -> None:
        self.request_id = int(request_id)
        self.model = model
        self.n = int(n)
        self.transport = transport
        self.shard = shard
        self.spans = list(spans)
        #: Optional per-phase compute profile (from a worker-side
        #: SessionProfiler) keyed phase name -> {"calls", "total_ms"}.
        self.compute_phases = compute_phases

    @property
    def total_ms(self) -> float:
        if not self.spans:
            return 0.0
        return (self.spans[-1].end - self.spans[0].start) * 1e3

    @property
    def span_sum_ms(self) -> float:
        return sum(span.duration_ms for span in self.spans)

    @property
    def complete(self) -> bool:
        """True when the chain covers the full lifecycle in order."""
        names = [span.name for span in self.spans]
        if not names or names[0] != "enqueue" or names[-1] != "complete":
            return False
        position = 0
        for expected in SPAN_CHAIN:
            alternatives = (expected,) if isinstance(expected, str) else expected
            if position < len(names) and names[position] in alternatives:
                position += 1
            elif expected == "worker_recv":
                continue  # collapsed into compute (no worker stamps)
            else:
                return False
        return position == len(names)

    def to_dict(self) -> dict:
        doc = {
            "request_id": self.request_id,
            "model": self.model,
            "n": self.n,
            "transport": self.transport,
            "shard": self.shard,
            "total_ms": self.total_ms,
            "complete": self.complete,
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.compute_phases is not None:
            doc["compute_phases"] = self.compute_phases
        return doc


def spans_from_stamps(enqueued: float, gathered: float, write_start: float,
                      sent: float, collected: float, done: float,
                      transport: str,
                      worker: Optional[tuple] = None) -> list:
    """Build the contiguous span chain from absolute perf_counter stamps.

    ``worker`` is ``(recv, compute_start, compute_end)`` from the worker
    process, or ``None`` when the worker did not report stamps (then the
    whole ``sent -> collected`` stretch is attributed to ``compute``).
    Stamps are clamped monotone non-decreasing before use so clock
    granularity can never produce a negative span.
    """
    write_name = "shm_write" if transport == "shm" else "pickle_write"
    read_name = "shm_read" if transport == "shm" else "result_read"
    if worker is not None:
        recv, _c0, c1 = worker
        boundaries = [
            ("enqueue", enqueued), ("batch_form", gathered),
            (write_name, write_start), ("worker_recv", sent),
            ("compute", recv), (read_name, c1), ("complete", collected),
            (None, done),
        ]
    else:
        boundaries = [
            ("enqueue", enqueued), ("batch_form", gathered),
            (write_name, write_start), ("compute", sent),
            (read_name, collected), ("complete", collected),
            (None, done),
        ]
    spans = []
    previous = boundaries[0][1]
    clamped = []
    for name, stamp in boundaries:
        stamp = max(float(stamp), previous)
        clamped.append((name, stamp))
        previous = stamp
    for index in range(len(clamped) - 1):
        name, start = clamped[index]
        _next_name, end = clamped[index + 1]
        spans.append(Span(name, start, end))
    return spans


class Tracer:
    """Sampling decision + bounded in-memory trace buffer.

    ``sample()`` must be called under the caller's lock (the server takes
    its existing submit lock); the tracer itself only guards its buffer.
    """

    def __init__(self, sample_rate: float = 0.0, capacity: int = 256) -> None:
        if not 0.0 <= float(sample_rate) <= 1.0:
            raise ValueError("sample_rate must be in [0, 1], got %r"
                             % (sample_rate,))
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sample_rate = float(sample_rate)
        self.capacity = int(capacity)
        self._acc = 0.0
        self._buffer: deque = deque()
        self._by_id: dict[int, RequestTrace] = {}
        self.sampled = 0
        self.recorded = 0
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    def sample(self) -> bool:
        """Deterministic-fraction sampling decision for one request."""
        if self.sample_rate <= 0.0:
            return False
        self._acc += self.sample_rate
        if self._acc >= 1.0 - 1e-12:
            self._acc -= 1.0
            self.sampled += 1
            return True
        return False

    def record(self, trace: RequestTrace) -> None:
        if len(self._buffer) >= self.capacity:
            old = self._buffer.popleft()
            self._by_id.pop(old.request_id, None)
            self.dropped += 1
        self._buffer.append(trace)
        self._by_id[trace.request_id] = trace
        self.recorded += 1

    def get(self, request_id: int) -> Optional[RequestTrace]:
        return self._by_id.get(int(request_id))

    def traces(self, limit: Optional[int] = None) -> list:
        """Buffered traces oldest -> newest (up to ``limit`` newest)."""
        out = list(self._buffer)
        if limit is not None:
            out = out[-int(limit):]
        return out

    def summary(self) -> dict:
        return {
            "sample_rate": self.sample_rate,
            "capacity": self.capacity,
            "sampled": self.sampled,
            "recorded": self.recorded,
            "buffered": len(self._buffer),
            "dropped": self.dropped,
        }

    def collect(self, prefix: str = "serve_traces") -> list:
        """Registry-collector series for this tracer's counters.

        Shaped for :meth:`repro.obs.metrics.MetricsRegistry.add_collector`
        so sampling decisions, buffer occupancy, and — critically —
        buffer eviction (``dropped``) are scrapeable/alertable series
        instead of living only in ``stats()["tracing"]``.
        """
        return [
            {"name": "%s_sampled_total" % prefix, "kind": "counter",
             "value": self.sampled},
            {"name": "%s_recorded_total" % prefix, "kind": "counter",
             "value": self.recorded},
            {"name": "%s_dropped_total" % prefix, "kind": "counter",
             "value": self.dropped},
            {"name": "%s_buffered" % prefix, "kind": "gauge",
             "value": len(self._buffer)},
            {"name": "%s_buffer_capacity" % prefix, "kind": "gauge",
             "value": self.capacity},
            {"name": "%s_sample_rate" % prefix, "kind": "gauge",
             "value": self.sample_rate},
        ]

    def export_json(self, limit: Optional[int] = None) -> str:
        doc = {"schema": TRACE_SCHEMA,
               "traces": [t.to_dict() for t in self.traces(limit)]}
        return json.dumps(doc, indent=2)


def to_chrome(traces) -> dict:
    """Chrome ``trace_event`` document (load in chrome://tracing or
    Perfetto).  Each request becomes one track (tid = request id); spans
    become complete ("X") events with microsecond timestamps."""
    events = []
    for trace in traces:
        if not trace.spans:
            continue
        origin = trace.spans[0].start
        for span in trace.spans:
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": (span.start - origin) * 1e6,
                "dur": (span.end - span.start) * 1e6,
                "pid": 1,
                "tid": trace.request_id,
                "cat": trace.transport,
                "args": {"model": trace.model, "n": trace.n,
                         "shard": trace.shard},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}
